// Whole-stack determinism: identical (seed, job set, config) must replay
// bit-identically — the property every experiment in EXPERIMENTS.md
// relies on.
#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "workload/jobset.hpp"

namespace phisched::cluster {
namespace {

class DeterminismTest : public ::testing::TestWithParam<StackConfig> {};

TEST_P(DeterminismTest, RepeatedRunsAreIdentical) {
  const auto jobs = workload::make_real_jobset(40, Rng(17).child("jobs"));
  ExperimentConfig config;
  config.node_count = 3;
  config.stack = GetParam();
  config.seed = 99;

  const ExperimentResult a = run_experiment(config, jobs);
  const ExperimentResult b = run_experiment(config, jobs);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.avg_core_utilization, b.avg_core_utilization);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.offloads_started, b.offloads_started);
  EXPECT_EQ(a.offloads_queued, b.offloads_queued);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.per_device_utilization, b.per_device_utilization);
}

TEST_P(DeterminismTest, SeedChangesRandomizedStacks) {
  const auto jobs = workload::make_synthetic_jobset(
      workload::Distribution::kUniform, 60, Rng(3).child("jobs"));
  ExperimentConfig config;
  config.node_count = 3;
  config.stack = GetParam();
  config.seed = 1;
  const ExperimentResult a = run_experiment(config, jobs);
  config.seed = 2;
  const ExperimentResult b = run_experiment(config, jobs);
  // Same workload, different seed: jobs all complete either way.
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, DeterminismTest,
    ::testing::Values(StackConfig::kMC, StackConfig::kMCC, StackConfig::kMCCK),
    [](const auto& suite_info) { return stack_config_name(suite_info.param); });

TEST(Determinism, WorkloadGenerationIsPure) {
  const auto a = workload::make_real_jobset(100, Rng(5).child("x"));
  const auto b = workload::make_real_jobset(100, Rng(5).child("x"));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mem_req_mib, b[i].mem_req_mib);
    EXPECT_EQ(a[i].threads_req, b[i].threads_req);
    EXPECT_DOUBLE_EQ(a[i].profile.total_duration(),
                     b[i].profile.total_duration());
  }
}

}  // namespace
}  // namespace phisched::cluster
