// End-to-end behavioural checks of the full stack at experiment scale:
// the paper's qualitative claims on small-but-representative job sets.
#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "workload/jobset.hpp"

namespace phisched::cluster {
namespace {

TEST(EndToEnd, PaperOrderingHoldsOnRealWorkload) {
  // MC > MCC > MCCK in makespan on a Table I job set (8-node cluster).
  const auto jobs = workload::make_real_jobset(200, Rng(42).child("jobs"));
  ExperimentConfig config;
  config.node_count = 8;

  config.stack = StackConfig::kMC;
  const auto mc = run_experiment(config, jobs);
  config.stack = StackConfig::kMCC;
  const auto mcc = run_experiment(config, jobs);
  config.stack = StackConfig::kMCCK;
  const auto mcck = run_experiment(config, jobs);

  EXPECT_LT(mcc.makespan, mc.makespan);
  EXPECT_LT(mcck.makespan, mcc.makespan);
  // Reductions in the paper's ballpark (more than 15%, less than 70%).
  EXPECT_LT(mcck.makespan, 0.85 * mc.makespan);
  EXPECT_GT(mcck.makespan, 0.30 * mc.makespan);
}

TEST(EndToEnd, ExclusiveUtilizationNearPaperRange) {
  // Section III: 38%-63% core utilization under the exclusive policy.
  const auto jobs = workload::make_real_jobset(200, Rng(42).child("jobs"));
  ExperimentConfig config;
  config.node_count = 8;
  config.stack = StackConfig::kMC;
  const auto r = run_experiment(config, jobs);
  EXPECT_GT(r.avg_core_utilization, 0.35);
  EXPECT_LT(r.avg_core_utilization, 0.65);
}

TEST(EndToEnd, SharingRaisesUtilization) {
  const auto jobs = workload::make_real_jobset(200, Rng(42).child("jobs"));
  ExperimentConfig config;
  config.node_count = 8;
  config.stack = StackConfig::kMC;
  const double mc_util = run_experiment(config, jobs).avg_core_utilization;
  config.stack = StackConfig::kMCC;
  const double mcc_util = run_experiment(config, jobs).avg_core_utilization;
  EXPECT_GT(mcc_util, mc_util + 0.1);
}

TEST(EndToEnd, NoSafetyViolationsUnderAnyStack) {
  // Truthful declarations + COSMIC/knapsack discipline: nothing is ever
  // killed, in any configuration, across distributions.
  for (const auto dist : workload::all_distributions()) {
    const auto jobs =
        workload::make_synthetic_jobset(dist, 80, Rng(7).child("syn"));
    for (const auto stack :
         {StackConfig::kMC, StackConfig::kMCC, StackConfig::kMCCK}) {
      ExperimentConfig config;
      config.node_count = 4;
      config.stack = stack;
      const auto r = run_experiment(config, jobs);
      EXPECT_EQ(r.jobs_failed, 0u)
          << stack_config_name(stack) << "/"
          << workload::distribution_name(dist);
      EXPECT_EQ(r.oom_kills, 0u);
      EXPECT_EQ(r.container_kills, 0u);
      EXPECT_EQ(r.jobs_completed, jobs.size());
    }
  }
}

TEST(EndToEnd, HighSkewBenefitsLessThanLowSkew) {
  // Section V-B: sharing gains shrink when most jobs are big.
  ExperimentConfig config;
  config.node_count = 8;
  auto gain = [&](workload::Distribution dist) {
    const auto jobs =
        workload::make_synthetic_jobset(dist, 120, Rng(11).child("syn"));
    config.stack = StackConfig::kMC;
    const double mc = run_experiment(config, jobs).makespan;
    config.stack = StackConfig::kMCCK;
    const double mcck = run_experiment(config, jobs).makespan;
    return 1.0 - mcck / mc;
  };
  EXPECT_GT(gain(workload::Distribution::kLowSkew),
            gain(workload::Distribution::kHighSkew));
}

TEST(EndToEnd, KnapsackQueuesFewerOffloadsThanRandom) {
  // The concurrency discipline: MCCK's thread-aware packs wait far less
  // in COSMIC's offload queue than MCC's arbitrary packs.
  const auto jobs = workload::make_real_jobset(200, Rng(21).child("jobs"));
  ExperimentConfig config;
  config.node_count = 4;
  config.stack = StackConfig::kMCC;
  const auto mcc = run_experiment(config, jobs);
  config.stack = StackConfig::kMCCK;
  const auto mcck = run_experiment(config, jobs);
  EXPECT_LT(mcck.offloads_queued, mcc.offloads_queued);
}

TEST(EndToEnd, DispatchLatencyDelaysFirstStart) {
  workload::JobSet jobs;
  workload::JobSpec job;
  job.id = 0;
  job.mem_req_mib = 500;
  job.threads_req = 60;
  job.profile =
      workload::OffloadProfile({workload::Segment::offload(5.0, 60, 400)});
  jobs.push_back(job);
  ExperimentConfig config;
  config.node_count = 1;
  config.stack = StackConfig::kMCC;
  config.dispatch_latency = 0.5;
  const auto r = run_experiment(config, jobs);
  // First cycle at t=0, dispatch latency 0.5, offload 5.0 → makespan 5.5.
  EXPECT_DOUBLE_EQ(r.makespan, 5.5);
}

TEST(EndToEnd, NegotiationIntervalGatesThroughput) {
  // With one slot, each later job must wait for a cycle: lengthening the
  // cycle lengthens the makespan.
  const auto jobs = workload::make_real_jobset(10, Rng(5).child("jobs"));
  ExperimentConfig config;
  config.node_count = 1;
  config.node_hw.slots = 1;
  config.stack = StackConfig::kMCC;
  config.negotiation_interval = 5.0;
  const double fast = run_experiment(config, jobs).makespan;
  config.negotiation_interval = 50.0;
  config.dispatch_latency = 0.5;
  const double slow = run_experiment(config, jobs).makespan;
  EXPECT_GT(slow, fast + 100.0);
}

}  // namespace
}  // namespace phisched::cluster
