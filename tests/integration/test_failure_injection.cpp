// Failure injection: jobs that lie about their memory requirements.
// COSMIC's containers terminate the liars; honest jobs are unaffected and
// the cluster drains cleanly (paper Section IV-D2: the knapsack "cannot
// compensate for a user's mistakes", COSMIC does).
#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "workload/jobset.hpp"

namespace phisched::cluster {
namespace {

using workload::OffloadProfile;
using workload::Segment;

workload::JobSpec honest_job(JobId id) {
  workload::JobSpec job;
  job.id = id;
  job.mem_req_mib = 1000;
  job.threads_req = 60;
  job.profile = OffloadProfile({Segment::offload(3.0, 60, 800),
                                Segment::host(2.0),
                                Segment::offload(3.0, 60, 800)});
  return job;
}

workload::JobSpec lying_job(JobId id) {
  workload::JobSpec job;
  job.id = id;
  job.mem_req_mib = 500;  // declares 500 MiB...
  job.threads_req = 60;
  job.profile = OffloadProfile({Segment::offload(3.0, 60, 400),
                                Segment::host(1.0),
                                Segment::offload(3.0, 60, 3000)});  // ...uses 3 GiB
  return job;
}

class FailureInjection : public ::testing::TestWithParam<StackConfig> {};

TEST_P(FailureInjection, LiarsAreKilledHonestJobsComplete) {
  workload::JobSet jobs;
  for (JobId id = 0; id < 12; ++id) {
    jobs.push_back(id % 4 == 0 ? lying_job(id) : honest_job(id));
  }
  ExperimentConfig config;
  config.node_count = 2;
  config.stack = GetParam();
  const ExperimentResult r = run_experiment(config, jobs);
  EXPECT_EQ(r.jobs_failed, 3u);
  EXPECT_EQ(r.jobs_completed, 9u);
  EXPECT_EQ(r.container_kills, 3u);
  EXPECT_EQ(r.oom_kills, 0u);  // containers caught the lie before OOM
}

INSTANTIATE_TEST_SUITE_P(
    SharingStacks, FailureInjection,
    ::testing::Values(StackConfig::kMCC, StackConfig::kMCCK),
    [](const auto& suite_info) {
      return std::string(stack_config_name(suite_info.param)) == "MCCK"
                 ? "MCCK"
                 : "MCC";
    });

TEST(FailureInjectionMc, ExclusiveModeToleratesLiesThatFitTheCard) {
  // Without COSMIC, a lying job is only punished if it physically
  // oversubscribes the card — alone on a device, 3 GiB actual fits.
  workload::JobSet jobs;
  for (JobId id = 0; id < 4; ++id) jobs.push_back(lying_job(id));
  ExperimentConfig config;
  config.node_count = 2;
  config.stack = StackConfig::kMC;
  const ExperimentResult r = run_experiment(config, jobs);
  EXPECT_EQ(r.jobs_failed, 0u);
  EXPECT_EQ(r.jobs_completed, 4u);
}

TEST(FailureInjectionOom, UnprotectedSharingTriggersOomKills) {
  // Sharing with containers disabled models raw MPSS multiprocessing:
  // when the liars' actual usage oversubscribes physical memory, the OOM
  // killer terminates processes (paper Section II-C).
  workload::JobSet jobs;
  for (JobId id = 0; id < 12; ++id) {
    workload::JobSpec job;
    job.id = id;
    job.mem_req_mib = 600;  // all twelve "fit" by declaration
    job.threads_req = 60;
    job.profile = OffloadProfile({Segment::offload(5.0, 60, 3500)});
    jobs.push_back(job);
  }
  ExperimentConfig config;
  config.node_count = 1;
  config.stack = StackConfig::kMCC;
  config.disable_containers_for_testing = true;
  const ExperimentResult r = run_experiment(config, jobs);
  EXPECT_GT(r.oom_kills, 0u);
  EXPECT_EQ(r.jobs_completed + r.jobs_failed, 12u);
  EXPECT_GT(r.jobs_completed, 0u);  // survivors finish
}

TEST(FailureInjectionOom, ContainersPreventTheSameOomScenario) {
  workload::JobSet jobs;
  for (JobId id = 0; id < 12; ++id) {
    workload::JobSpec job;
    job.id = id;
    job.mem_req_mib = 600;
    job.threads_req = 60;
    job.profile = OffloadProfile({Segment::offload(5.0, 60, 3500)});
    jobs.push_back(job);
  }
  ExperimentConfig config;
  config.node_count = 1;
  config.stack = StackConfig::kMCC;
  const ExperimentResult r = run_experiment(config, jobs);
  EXPECT_EQ(r.oom_kills, 0u);  // container kills fire first
  EXPECT_EQ(r.container_kills, 12u);
}

}  // namespace
}  // namespace phisched::cluster
