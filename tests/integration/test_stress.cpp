// Randomized stress tests: invariants that must hold under ANY sequence
// of job submissions, offload requests, completions and kills.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/experiment.hpp"
#include "cosmic/middleware.hpp"
#include "workload/jobset.hpp"

namespace phisched {
namespace {

/// Drives a random mix of honest and lying jobs through one COSMIC-managed
/// device, checking safety invariants after every simulator step.
class MiddlewareStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MiddlewareStress, InvariantsHoldUnderRandomLoad) {
  Simulator sim;
  phi::DeviceConfig dc;
  dc.affinity = phi::AffinityPolicy::kManagedCompact;
  phi::Device device(sim, dc, Rng(GetParam()).child("device"));
  cosmic::NodeMiddleware mw(sim, {&device}, cosmic::MiddlewareConfig{});

  Rng rng(GetParam());
  struct JobState {
    bool admitted = false;
    bool killed = false;
    int offloads_left = 0;
    MiB declared = 0;
  };
  std::map<JobId, std::shared_ptr<JobState>> jobs;

  // A self-perpetuating offload chain per admitted job.
  std::function<void(JobId)> issue = [&](JobId id) {
    auto state = jobs.at(id);
    if (state->killed) return;
    if (state->offloads_left-- <= 0) {
      mw.finish_job(id);
      return;
    }
    // 10% of offloads lie: working set above the declaration.
    const bool lie = rng.bernoulli(0.1);
    const MiB working_set = lie ? state->declared + 500
                                : std::max<MiB>(50, state->declared - 100);
    const auto threads = static_cast<ThreadCount>(30 * rng.uniform_int(1, 8));
    mw.request_offload(id, threads, working_set,
                       rng.uniform_real(0.5, 3.0), [&issue, id] { issue(id); });
  };

  for (JobId id = 0; id < 60; ++id) {
    auto state = std::make_shared<JobState>();
    state->declared = 50 * rng.uniform_int(4, 60);  // 200..3000 MiB
    state->offloads_left = static_cast<int>(rng.uniform_int(1, 5));
    jobs.emplace(id, state);
    mw.submit_job(
        id, std::nullopt, state->declared, 120, 16,
        [state](JobId, phi::KillReason reason) {
          EXPECT_EQ(reason, phi::KillReason::kContainerLimit);
          state->killed = true;
        },
        [&issue, id, state] {
          state->admitted = true;
          issue(id);
        });
  }

  std::size_t steps = 0;
  while (sim.step()) {
    // INVARIANT 1: COSMIC never lets running offloads oversubscribe.
    ASSERT_LE(device.active_thread_demand(), 240);
    // INVARIANT 2: actual memory stays within physical limits.
    ASSERT_LE(device.memory_used(), device.usable_memory());
    ASSERT_LE(++steps, 100000u) << "stress run did not terminate";
  }

  // INVARIANT 3: every job was eventually admitted and reached a clean
  // terminal state (finished or container-killed).
  std::size_t killed = 0;
  for (const auto& [id, state] : jobs) {
    EXPECT_TRUE(state->admitted) << "job " << id << " starved";
    if (state->killed) ++killed;
  }
  EXPECT_EQ(mw.stats().container_kills, killed);
  // INVARIANT 4: the device drained completely.
  EXPECT_EQ(device.process_count(), 0u);
  EXPECT_EQ(device.memory_used(), 0);
  EXPECT_EQ(device.active_thread_demand(), 0);
  EXPECT_EQ(mw.waiting_jobs(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiddlewareStress,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

/// Whole-experiment stress: random small clusters and workloads, every
/// stack; nothing may deadlock, leak reservations or lose jobs.
class ExperimentStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExperimentStress, RandomConfigurationsDrainCleanly) {
  Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    cluster::ExperimentConfig config;
    config.node_count = static_cast<std::size_t>(rng.uniform_int(1, 4));
    config.node_hw.phi_devices = static_cast<int>(rng.uniform_int(1, 2));
    config.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    const std::array<cluster::StackConfig, 5> stacks{
        cluster::StackConfig::kMC, cluster::StackConfig::kMCC,
        cluster::StackConfig::kMCCK, cluster::StackConfig::kMCCFirstFit,
        cluster::StackConfig::kMCCOracle};
    config.stack = stacks[rng.index(stacks.size())];
    const auto n = static_cast<std::size_t>(rng.uniform_int(5, 60));
    const auto jobs = workload::make_real_jobset(
        n, Rng(config.seed).child("stress-jobs"));
    const auto r = cluster::run_experiment(config, jobs);
    EXPECT_EQ(r.jobs_completed, n);
    EXPECT_EQ(r.jobs_failed, 0u);
    EXPECT_GT(r.makespan, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExperimentStress,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace phisched
