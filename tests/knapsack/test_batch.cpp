#include "knapsack/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace phisched::knapsack {
namespace {

BatchJob job(std::size_t tag, MiB mem, ThreadCount threads,
             std::vector<std::size_t> eligible, double value = 1.0) {
  BatchJob j;
  j.tag = tag;
  j.mem_mib = mem;
  j.threads = threads;
  j.value = value;
  j.eligible = std::move(eligible);
  return j;
}

TEST(BatchPacker, PlacesEverythingWhenCapacitySuffices) {
  BatchProblem problem;
  problem.bins = {BatchBin{4000, 200}, BatchBin{4000, 200}};
  for (std::size_t t = 0; t < 4; ++t) {
    problem.jobs.push_back(job(t, 1000, 50, {0, 1}));
  }
  const BatchResult result = BatchPacker(SolverKind::kDp2D).pack(problem);
  EXPECT_EQ(result.placed.size(), 4u);
  EXPECT_TRUE(result.rejected.empty());
  EXPECT_TRUE(result.unmatchable.empty());
}

TEST(BatchPacker, SplitsRemainderIntoRejectedAndUnmatchable) {
  BatchProblem problem;
  problem.bins = {BatchBin{1000, 100}};
  problem.jobs = {
      job(0, 900, 50, {0}),   // placed
      job(1, 900, 50, {0}),   // eligible, no capacity left → rejected
      job(2, 100, 10, {}),    // no eligible bin → unmatchable
  };
  const BatchResult result = BatchPacker(SolverKind::kDp2D).pack(problem);
  ASSERT_EQ(result.placed.size(), 1u);
  EXPECT_EQ(result.placed[0].job_tag, 0u);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_EQ(result.rejected[0], 1u);
  ASSERT_EQ(result.unmatchable.size(), 1u);
  EXPECT_EQ(result.unmatchable[0], 2u);
}

TEST(BatchPacker, RespectsEligibilityRestrictions) {
  BatchProblem problem;
  problem.bins = {BatchBin{4000, 200}, BatchBin{4000, 200}};
  problem.jobs = {job(0, 100, 10, {1}), job(1, 100, 10, {0})};
  const BatchResult result = BatchPacker(SolverKind::kGreedyDensity).pack(problem);
  ASSERT_EQ(result.placed.size(), 2u);
  for (const BatchPlacement& p : result.placed) {
    EXPECT_EQ(p.bin, p.job_tag == 0 ? 1u : 0u);
  }
}

TEST(BatchPacker, ThreadBudgetConstrainsEachBin) {
  BatchProblem problem;
  problem.bins = {BatchBin{8000, 100}};
  problem.jobs = {job(0, 100, 60, {0}), job(1, 100, 60, {0})};
  const BatchResult result = BatchPacker(SolverKind::kDp2D).pack(problem);
  EXPECT_EQ(result.placed.size(), 1u);
  EXPECT_EQ(result.rejected.size(), 1u);
}

TEST(BatchPacker, ZeroCapacityBinsTakeNothing) {
  BatchProblem problem;
  problem.bins = {BatchBin{0, 100}, BatchBin{1000, 0}, BatchBin{1000, 100}};
  problem.jobs = {job(0, 500, 50, {0, 1, 2})};
  const BatchResult result = BatchPacker(SolverKind::kDp2D).pack(problem);
  ASSERT_EQ(result.placed.size(), 1u);
  EXPECT_EQ(result.placed[0].bin, 2u);
}

TEST(BatchPacker, PlacementOrderIsAscendingBins) {
  BatchProblem problem;
  problem.bins = {BatchBin{1000, 100}, BatchBin{1000, 100}};
  problem.jobs = {job(0, 800, 50, {0, 1}), job(1, 800, 50, {0, 1}),
                  job(2, 100, 10, {0, 1})};
  const BatchResult result = BatchPacker(SolverKind::kDp2D).pack(problem);
  ASSERT_EQ(result.placed.size(), 3u);
  for (std::size_t i = 1; i < result.placed.size(); ++i) {
    EXPECT_LE(result.placed[i - 1].bin, result.placed[i].bin);
  }
}

TEST(BatchPacker, DeterministicAcrossRepeatsAndBackends) {
  BatchProblem problem;
  problem.bins = {BatchBin{5000, 216}, BatchBin{5000, 216},
                  BatchBin{3000, 216}};
  for (std::size_t t = 0; t < 12; ++t) {
    problem.jobs.push_back(job(t, 400 + 300 * static_cast<MiB>(t % 5),
                               30 + static_cast<ThreadCount>(10 * (t % 4)),
                               {0, 1, 2}, 1.0 + 0.1 * static_cast<double>(t)));
  }
  for (const SolverKind kind :
       {SolverKind::kGreedyDensity, SolverKind::kDp1D, SolverKind::kDp2D,
        SolverKind::kBranchAndBound}) {
    const BatchPacker packer(kind);
    const BatchResult a = packer.pack(problem);
    const BatchResult b = packer.pack(problem);
    ASSERT_EQ(a.placed.size(), b.placed.size()) << solver_kind_name(kind);
    for (std::size_t i = 0; i < a.placed.size(); ++i) {
      EXPECT_EQ(a.placed[i].job_tag, b.placed[i].job_tag);
      EXPECT_EQ(a.placed[i].bin, b.placed[i].bin);
    }
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.unmatchable, b.unmatchable);
  }
}

TEST(BatchPacker, PlacementsNeverOversubscribeABin) {
  BatchProblem problem;
  problem.bins = {BatchBin{2500, 120}, BatchBin{1500, 90}};
  for (std::size_t t = 0; t < 8; ++t) {
    problem.jobs.push_back(
        job(t, 300 + 250 * static_cast<MiB>(t % 4),
            20 + static_cast<ThreadCount>(15 * (t % 3)),
            {0, 1}));
  }
  for (const SolverKind kind : {SolverKind::kGreedyDensity, SolverKind::kDp2D,
                                SolverKind::kBranchAndBound}) {
    const BatchResult result = BatchPacker(kind).pack(problem);
    std::vector<MiB> mem(problem.bins.size(), 0);
    std::vector<ThreadCount> threads(problem.bins.size(), 0);
    for (const BatchPlacement& p : result.placed) {
      mem[p.bin] += problem.jobs[p.job_tag].mem_mib;
      threads[p.bin] += problem.jobs[p.job_tag].threads;
    }
    for (std::size_t b = 0; b < problem.bins.size(); ++b) {
      EXPECT_LE(mem[b], problem.bins[b].mem_capacity_mib)
          << solver_kind_name(kind);
      EXPECT_LE(threads[b], problem.bins[b].thread_capacity)
          << solver_kind_name(kind);
    }
  }
}

TEST(BatchPacker, EachJobPlacedAtMostOnce) {
  BatchProblem problem;
  problem.bins = {BatchBin{8000, 216}, BatchBin{8000, 216}};
  for (std::size_t t = 0; t < 6; ++t) {
    problem.jobs.push_back(job(t, 500, 40, {0, 1}));
  }
  const BatchResult result = BatchPacker(SolverKind::kDp2D).pack(problem);
  std::vector<std::size_t> tags;
  for (const BatchPlacement& p : result.placed) tags.push_back(p.job_tag);
  std::sort(tags.begin(), tags.end());
  EXPECT_TRUE(std::adjacent_find(tags.begin(), tags.end()) == tags.end());
}

TEST(BatchPacker, RejectsOutOfRangeEligibility) {
  BatchProblem problem;
  problem.bins = {BatchBin{1000, 100}};
  problem.jobs = {job(0, 100, 10, {0, 7})};
  EXPECT_THROW(BatchPacker(SolverKind::kDp2D).pack(problem),
               std::invalid_argument);
}

TEST(BatchPacker, ReportsItsBackend) {
  const BatchPacker packer(SolverKind::kBranchAndBound);
  EXPECT_EQ(packer.backend(), SolverKind::kBranchAndBound);
  EXPECT_FALSE(packer.backend_name().empty());
}

TEST(SolverKindFromName, RoundTripsAllBackends) {
  for (const SolverKind kind : {SolverKind::kDp1D, SolverKind::kDp2D,
                                SolverKind::kBranchAndBound,
                                SolverKind::kGreedyDensity}) {
    EXPECT_EQ(solver_kind_from_name(solver_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)solver_kind_from_name("simplex"), std::invalid_argument);
}

}  // namespace
}  // namespace phisched::knapsack
