#include "knapsack/dp1d.hpp"

#include <gtest/gtest.h>

#include "knapsack/value.hpp"

namespace phisched::knapsack {
namespace {

Item item(MiB weight, ThreadCount threads, double value) {
  Item it;
  it.weight_mib = weight;
  it.threads = threads;
  it.value = value;
  return it;
}

TEST(Dp1D, EmptyProblem) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 8000;
  EXPECT_TRUE(solver.solve(p).empty());
}

TEST(Dp1D, ZeroCapacity) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 0;
  p.items.push_back(item(100, 60, 1.0));
  EXPECT_TRUE(solver.solve(p).empty());
}

TEST(Dp1D, PacksEverythingWhenItFits) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 8000;
  p.items = {item(1000, 60, 1.0), item(2000, 60, 1.0), item(3000, 60, 1.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks.size(), 3u);
  EXPECT_DOUBLE_EQ(s.value, 3.0);
  EXPECT_EQ(s.threads, 180);
}

TEST(Dp1D, ClassicKnapsackOptimum) {
  // Weights 10,20,30 (x100 MiB), values 60,100,120, capacity 50:
  // optimum = items 2+3 with value 220.
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 5000;
  p.quantum_mib = 100;
  p.thread_capacity = 10000;  // threads irrelevant here
  p.items = {item(1000, 1, 60.0), item(2000, 1, 100.0), item(3000, 1, 120.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks, (std::vector<std::size_t>{1, 2}));
  EXPECT_DOUBLE_EQ(s.value, 220.0);
}

TEST(Dp1D, ThreadRuleExcludesOverflowingSets) {
  // Two jobs fit in memory but not in threads: the value-zero rule keeps
  // the packed set thread-feasible.
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 8000;
  p.thread_capacity = 240;
  p.items = {item(1000, 180, 0.44), item(1000, 180, 0.44),
             item(1000, 60, 0.94)};
  const Solution s = solver.solve(p);
  EXPECT_LE(s.threads, 240);
  // Best feasible: one 180 + the 60.
  EXPECT_DOUBLE_EQ(s.value, 0.44 + 0.94);
}

TEST(Dp1D, WeightsRoundUpToQuantum) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 100;
  p.quantum_mib = 50;
  // 60 MiB rounds up to 100: only one fits.
  p.items = {item(60, 10, 1.0), item(60, 10, 1.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks.size(), 1u);
}

TEST(Dp1D, PrefersManyNarrowJobsUnderPaperValues) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 4000;
  p.thread_capacity = 240;
  // One wide job vs four narrow jobs of the same total memory.
  p.items = {item(4000, 240, job_value(ValueFunction::kPaperQuadratic, 240, 240)),
             item(1000, 60, job_value(ValueFunction::kPaperQuadratic, 60, 240)),
             item(1000, 60, job_value(ValueFunction::kPaperQuadratic, 60, 240)),
             item(1000, 60, job_value(ValueFunction::kPaperQuadratic, 60, 240)),
             item(1000, 60, job_value(ValueFunction::kPaperQuadratic, 60, 240))};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks.size(), 4u);  // the four narrow jobs
  EXPECT_EQ(s.threads, 240);
}

TEST(Dp1D, OversizedItemIgnored) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 1000;
  p.items = {item(2000, 60, 5.0), item(500, 60, 1.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks, (std::vector<std::size_t>{1}));
}

TEST(Dp1D, SolutionReportsQuantizedWeight) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 1000;
  p.items = {item(120, 60, 1.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.weight_mib, 150);  // 120 rounded up to the 50 MiB grid
}

TEST(Dp1D, ZeroWeightItemRejected) {
  Dp1DSolver solver;
  Problem p;
  p.capacity_mib = 1000;
  p.items = {item(0, 60, 1.0)};
  EXPECT_THROW((void)solver.solve(p), std::invalid_argument);
}

TEST(Dp1D, Name) { EXPECT_EQ(Dp1DSolver().name(), "dp1d"); }

}  // namespace
}  // namespace phisched::knapsack
