#include "knapsack/dp2d.hpp"

#include <gtest/gtest.h>

namespace phisched::knapsack {
namespace {

Item item(MiB weight, ThreadCount threads, double value) {
  Item it;
  it.weight_mib = weight;
  it.threads = threads;
  it.value = value;
  return it;
}

TEST(Dp2D, EmptyProblem) {
  Dp2DSolver solver;
  Problem p;
  p.capacity_mib = 8000;
  EXPECT_TRUE(solver.solve(p).empty());
}

TEST(Dp2D, RespectsBothConstraints) {
  Dp2DSolver solver;
  Problem p;
  p.capacity_mib = 3000;
  p.thread_capacity = 240;
  p.items = {item(1000, 120, 1.0), item(1000, 120, 1.0), item(1000, 120, 1.0),
             item(1000, 120, 1.0)};
  const Solution s = solver.solve(p);
  // Memory alone allows 3, threads only allow 2.
  EXPECT_EQ(s.picks.size(), 2u);
  EXPECT_LE(s.threads, 240);
  EXPECT_LE(s.weight_mib, 3000);
}

TEST(Dp2D, FindsThreadConstrainedOptimumTheHeuristicMisses) {
  // Items ordered so the 1-D heuristic's greedy path is suboptimal:
  // a high-value wide job plus a filler beats two mid jobs.
  Dp2DSolver solver;
  Problem p;
  p.capacity_mib = 4000;
  p.thread_capacity = 240;
  p.items = {item(2000, 200, 2.0), item(2000, 200, 2.0), item(2000, 40, 2.5),
             item(2000, 40, 2.5)};
  const Solution s = solver.solve(p);
  // Optimum: the two 40-thread items (value 5.0, threads 80).
  EXPECT_DOUBLE_EQ(s.value, 5.0);
  EXPECT_EQ(s.picks, (std::vector<std::size_t>{2, 3}));
}

TEST(Dp2D, MemoryOnlyReducesToClassicKnapsack) {
  Dp2DSolver solver;
  Problem p;
  p.capacity_mib = 5000;
  p.quantum_mib = 100;
  p.thread_capacity = 100000;
  p.items = {item(1000, 1, 60.0), item(2000, 1, 100.0), item(3000, 1, 120.0)};
  const Solution s = solver.solve(p);
  EXPECT_DOUBLE_EQ(s.value, 220.0);
}

TEST(Dp2D, SingleItemExactlyFitting) {
  Dp2DSolver solver;
  Problem p;
  p.capacity_mib = 1000;
  p.thread_capacity = 240;
  p.items = {item(1000, 240, 1.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks.size(), 1u);
}

TEST(Dp2D, ItemExceedingThreadsAloneIsExcluded) {
  Dp2DSolver solver;
  Problem p;
  p.capacity_mib = 8000;
  p.thread_capacity = 120;
  p.items = {item(1000, 240, 10.0), item(1000, 120, 1.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks, (std::vector<std::size_t>{1}));
}

TEST(Dp2D, ZeroThreadCapacityPacksNothing) {
  Dp2DSolver solver;
  Problem p;
  p.capacity_mib = 8000;
  p.thread_capacity = 0;
  p.items = {item(1000, 60, 1.0)};
  EXPECT_TRUE(solver.solve(p).empty());
}

TEST(Dp2D, Name) { EXPECT_EQ(Dp2DSolver().name(), "dp2d"); }

}  // namespace
}  // namespace phisched::knapsack
