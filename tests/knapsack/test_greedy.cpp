#include "knapsack/greedy.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "knapsack/dp2d.hpp"
#include "knapsack/value.hpp"

namespace phisched::knapsack {
namespace {

Item item(MiB weight, ThreadCount threads, double value) {
  Item it;
  it.weight_mib = weight;
  it.threads = threads;
  it.value = value;
  return it;
}

TEST(Greedy, TakesByDensity) {
  GreedyDensitySolver solver;
  Problem p;
  p.capacity_mib = 1000;
  p.thread_capacity = 240;
  // Densities: 2/1000, 5/1000, 1/1000 — greedy takes index 1 first.
  p.items = {item(1000, 60, 2.0), item(1000, 60, 5.0), item(1000, 60, 1.0)};
  const Solution s = solver.solve(p);
  EXPECT_EQ(s.picks, (std::vector<std::size_t>{1}));
}

TEST(Greedy, RespectsBothBudgets) {
  GreedyDensitySolver solver;
  Problem p;
  p.capacity_mib = 8000;
  p.thread_capacity = 240;
  p.items = {item(100, 180, 1.0), item(100, 180, 0.9), item(100, 60, 0.8)};
  const Solution s = solver.solve(p);
  // The second 180-thread item does not fit the thread budget; the
  // 60-thread one does.
  EXPECT_EQ(s.picks, (std::vector<std::size_t>{0, 2}));
  EXPECT_LE(s.threads, 240);
}

TEST(Greedy, ClassicPitfall) {
  // Density order misses the optimum: one dense small item blocks two
  // medium ones. DP finds the better pack.
  GreedyDensitySolver greedy;
  Dp2DSolver exact;
  Problem p;
  p.capacity_mib = 1000;
  p.quantum_mib = 50;
  p.thread_capacity = 240;
  p.items = {item(600, 10, 7.0),   // density 11.7/k
             item(500, 10, 5.5),   // density 11.0/k
             item(500, 10, 5.5)};  // density 11.0/k
  EXPECT_DOUBLE_EQ(greedy.solve(p).value, 7.0);   // takes the dense one, stuck
  EXPECT_DOUBLE_EQ(exact.solve(p).value, 11.0);   // the two mediums
}

TEST(Greedy, NeverBeatsExactAndIsUsuallyClose) {
  Rng rng(77);
  GreedyDensitySolver greedy;
  Dp2DSolver exact;
  double g = 0.0;
  double e = 0.0;
  for (int round = 0; round < 25; ++round) {
    Problem p;
    p.capacity_mib = rng.uniform_int(1000, 8000);
    p.thread_capacity = 240;
    for (int i = 0; i < 12; ++i) {
      Item it;
      it.weight_mib = rng.uniform_int(100, 3500);
      it.threads = static_cast<ThreadCount>(30 * rng.uniform_int(1, 8));
      it.value = job_value(ValueFunction::kPaperQuadratic, it.threads, 240);
      p.items.push_back(it);
    }
    const double gv = greedy.solve(p).value;
    const double ev = exact.solve(p).value;
    EXPECT_LE(gv, ev + 1e-9);
    g += gv;
    e += ev;
  }
  EXPECT_GT(g, 0.80 * e);
}

TEST(Greedy, EmptyAndOversized) {
  GreedyDensitySolver solver;
  Problem p;
  p.capacity_mib = 100;
  EXPECT_TRUE(solver.solve(p).empty());
  p.items = {item(500, 60, 1.0)};
  EXPECT_TRUE(solver.solve(p).empty());
}

TEST(Greedy, FactoryName) {
  EXPECT_EQ(make_solver(SolverKind::kGreedyDensity)->name(), "greedy");
  EXPECT_STREQ(solver_kind_name(SolverKind::kGreedyDensity), "greedy");
}

}  // namespace
}  // namespace phisched::knapsack
