// Property-based cross-validation of the knapsack solvers on randomized
// instances:
//  * every solver's solution is feasible in BOTH dimensions;
//  * dp2d matches branch-and-bound (both exact) on every instance;
//  * dp1d (the paper's heuristic) is feasible and never better than exact.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "knapsack/bnb.hpp"
#include "knapsack/dp1d.hpp"
#include "knapsack/dp2d.hpp"
#include "knapsack/solver.hpp"
#include "knapsack/value.hpp"

namespace phisched::knapsack {
namespace {

Problem random_problem(Rng& rng, std::size_t n) {
  Problem p;
  p.capacity_mib = rng.uniform_int(1000, 8000);
  p.thread_capacity = 240;
  p.quantum_mib = 50;
  for (std::size_t i = 0; i < n; ++i) {
    Item item;
    item.weight_mib = rng.uniform_int(100, 3500);
    item.threads = static_cast<ThreadCount>(30 * rng.uniform_int(1, 8));
    item.value = job_value(ValueFunction::kPaperQuadratic, item.threads, 240);
    item.tag = i;
    p.items.push_back(item);
  }
  return p;
}

class SolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverProperty, AllSolversFeasible) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const Problem p = random_problem(rng, 12);
    for (const auto kind : {SolverKind::kDp1D, SolverKind::kDp2D,
                            SolverKind::kBranchAndBound}) {
      const Solution s = make_solver(kind)->solve(p);
      EXPECT_TRUE(feasible(p, s)) << solver_kind_name(kind);
      // picks are strictly ascending and unique
      for (std::size_t i = 1; i < s.picks.size(); ++i) {
        EXPECT_LT(s.picks[i - 1], s.picks[i]);
      }
      // reported aggregates match a recomputation
      const Solution re = materialize(p, s.picks);
      EXPECT_DOUBLE_EQ(re.value, s.value);
      EXPECT_EQ(re.weight_mib, s.weight_mib);
      EXPECT_EQ(re.threads, s.threads);
    }
  }
}

TEST_P(SolverProperty, Dp2DMatchesBranchAndBound) {
  Rng rng(GetParam() ^ 0xABCDEF);
  Dp2DSolver dp2d;
  BranchAndBoundSolver bnb;
  for (int round = 0; round < 10; ++round) {
    const Problem p = random_problem(rng, 14);
    const double v_dp = dp2d.solve(p).value;
    const double v_bb = bnb.solve(p).value;
    EXPECT_NEAR(v_dp, v_bb, 1e-9);
  }
}

TEST_P(SolverProperty, HeuristicNeverBeatsExact) {
  Rng rng(GetParam() ^ 0x123456);
  Dp1DSolver dp1d;
  Dp2DSolver dp2d;
  for (int round = 0; round < 10; ++round) {
    const Problem p = random_problem(rng, 14);
    EXPECT_LE(dp1d.solve(p).value, dp2d.solve(p).value + 1e-9);
  }
}

TEST_P(SolverProperty, HeuristicIsUsuallyClose) {
  Rng rng(GetParam() ^ 0x777);
  Dp1DSolver dp1d;
  Dp2DSolver dp2d;
  double h = 0.0;
  double e = 0.0;
  for (int round = 0; round < 20; ++round) {
    const Problem p = random_problem(rng, 14);
    h += dp1d.solve(p).value;
    e += dp2d.solve(p).value;
  }
  // Across many instances the paper's heuristic captures most of the
  // exact value (it is the production solver, after all).
  EXPECT_GT(h, 0.85 * e);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(SolverFactory, MakesEveryKind) {
  EXPECT_EQ(make_solver(SolverKind::kDp1D)->name(), "dp1d");
  EXPECT_EQ(make_solver(SolverKind::kDp2D)->name(), "dp2d");
  EXPECT_EQ(make_solver(SolverKind::kBranchAndBound)->name(), "bnb");
  EXPECT_STREQ(solver_kind_name(SolverKind::kDp2D), "dp2d");
}

TEST(BranchAndBound, NodeBudgetGuards) {
  BranchAndBoundSolver tiny(/*node_budget=*/3);
  Rng rng(9);
  const Problem p = random_problem(rng, 12);
  EXPECT_THROW((void)tiny.solve(p), InternalError);
}

TEST(Scaling, Dp1DHandlesLargeInstancesQuickly) {
  // The paper's complexity argument: O(n·w) with w = 160 buckets makes the
  // solve near-linear in n. 1000 items must be instant.
  Rng rng(11);
  const Problem p = random_problem(rng, 1000);
  Dp1DSolver solver;
  const Solution s = solver.solve(p);
  EXPECT_TRUE(feasible(p, s));
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace phisched::knapsack
