#include "knapsack/value.hpp"

#include <gtest/gtest.h>

namespace phisched::knapsack {
namespace {

TEST(ValueFunction, PaperQuadraticEquation1) {
  // Eq. 1: v = 1 - (t/240)^2.
  EXPECT_DOUBLE_EQ(job_value(ValueFunction::kPaperQuadratic, 60, 240),
                   1.0 - 0.25 * 0.25);
  EXPECT_DOUBLE_EQ(job_value(ValueFunction::kPaperQuadratic, 120, 240), 0.75);
  EXPECT_DOUBLE_EQ(job_value(ValueFunction::kPaperQuadratic, 180, 240),
                   1.0 - 0.75 * 0.75);
}

TEST(ValueFunction, FullWidthJobGetsFloorNotZero) {
  // v(240) would be exactly 0, which would make the DP never pack it; the
  // floor keeps full-width jobs schedulable.
  EXPECT_DOUBLE_EQ(job_value(ValueFunction::kPaperQuadratic, 240, 240),
                   kValueFloor);
}

TEST(ValueFunction, LinearAndUnit) {
  EXPECT_DOUBLE_EQ(job_value(ValueFunction::kLinearThreads, 60, 240), 0.75);
  EXPECT_DOUBLE_EQ(job_value(ValueFunction::kUnit, 237, 240), 1.0);
  EXPECT_DOUBLE_EQ(job_value(ValueFunction::kInverseThreads, 60, 240), 4.0);
}

TEST(ValueFunction, DecreasesWithThreads) {
  for (const auto f :
       {ValueFunction::kPaperQuadratic, ValueFunction::kLinearThreads,
        ValueFunction::kInverseThreads}) {
    double prev = job_value(f, 30, 240);
    for (ThreadCount t = 60; t <= 240; t += 30) {
      const double v = job_value(f, t, 240);
      EXPECT_LE(v, prev) << value_function_name(f) << " at t=" << t;
      prev = v;
    }
  }
}

TEST(ValueFunction, QuadraticDominatesLinearAndKeepsNarrowJobsNearOne) {
  // 1 - x^2 >= 1 - x on [0,1]: the quadratic keeps narrow jobs close to
  // full value (concavity), which is what lets four narrow jobs dominate
  // any mix involving a wide one.
  for (ThreadCount t = 30; t <= 240; t += 30) {
    EXPECT_GE(job_value(ValueFunction::kPaperQuadratic, t, 240),
              job_value(ValueFunction::kLinearThreads, t, 240));
  }
  EXPECT_GT(job_value(ValueFunction::kPaperQuadratic, 60, 240), 0.9);
  EXPECT_LT(job_value(ValueFunction::kLinearThreads, 60, 240), 0.8);
}

TEST(ValueFunction, FourNarrowBeatOneWide) {
  // 4 x 60-thread jobs outvalue 1 x 240-thread job by a wide margin.
  const double narrow4 =
      4.0 * job_value(ValueFunction::kPaperQuadratic, 60, 240);
  const double wide1 = job_value(ValueFunction::kPaperQuadratic, 240, 240);
  EXPECT_GT(narrow4, 10.0 * wide1);
}

TEST(ValueFunction, RejectsBadArguments) {
  EXPECT_THROW((void)job_value(ValueFunction::kUnit, 0, 240),
               std::invalid_argument);
  EXPECT_THROW((void)job_value(ValueFunction::kUnit, 60, 0),
               std::invalid_argument);
}

TEST(ValueFunction, Names) {
  EXPECT_STREQ(value_function_name(ValueFunction::kPaperQuadratic),
               "paper-quadratic");
  EXPECT_STREQ(value_function_name(ValueFunction::kLinearThreads), "linear");
  EXPECT_STREQ(value_function_name(ValueFunction::kUnit), "unit");
  EXPECT_STREQ(value_function_name(ValueFunction::kInverseThreads), "inverse");
}

}  // namespace
}  // namespace phisched::knapsack
