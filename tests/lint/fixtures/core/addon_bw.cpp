// Lint fixture: unordered-iter via the core/ directory scope. Lint
// fodder for tests/lint_fixtures.cmake — never compiled. core/ holds the
// negotiator add-on's device views and bandwidth trims, which pick
// placements: iteration-order hazards there are decision bugs, and this
// file pins that the directory stays inside the lint's decision-path
// scope. Line numbers are asserted by the test; append below the
// suppressed block only.
#include <unordered_map>

struct BwLedger {
  std::unordered_map<int, double> free_bw_;

  double worst_headroom() const {
    double worst = 1e18;
    for (const auto& [dev, bw] : free_bw_) {  // line 15: violation
      if (bw < worst) worst = bw;
    }
    return worst;
  }

  double total() const {
    double sum = 0.0;
    // Order-independent fold: addition over a fixed set, no tie-breaks.
    // phisched-lint: allow(unordered-iter)
    for (const auto& [dev, bw] : free_bw_) {  // line 25: suppressed
      sum += bw;
    }
    return sum;
  }
};
