// Lint fixture: unused-include. Lint fodder for tests/lint_fixtures.cmake
// — never compiled. used.hpp contributes UsedThing (credited),
// unused_extra.hpp contributes nothing this file mentions (flagged), and
// legacy.hpp is the same shape but suppressed at the include site.
#include "used.hpp"
#include "unused_extra.hpp"  // line 6: unused-include (ExtraThing never used)
// phisched-lint: allow(unused-include)  (kept for a pending refactor)
#include "legacy.hpp"

UsedThing make_used() { return {}; }
