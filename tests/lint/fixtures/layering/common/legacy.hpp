// Lint fixture: a header consumer.cpp includes but never uses, with an
// allow(unused-include) at the include site — the finding is suppressed
// but still counted. Never compiled.
#pragma once

struct LegacyThing {
  int value = 0;
};
