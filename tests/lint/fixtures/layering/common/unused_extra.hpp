// Lint fixture: a header consumer.cpp includes but never uses — the
// include is flagged unused-include. Never compiled.
#pragma once

struct ExtraThing {
  int value = 0;
};
