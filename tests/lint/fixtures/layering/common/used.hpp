// Lint fixture: a header consumer.cpp genuinely uses — its include must
// NOT be flagged as unused-include. Never compiled.
#pragma once

struct UsedThing {
  int value = 0;
};
