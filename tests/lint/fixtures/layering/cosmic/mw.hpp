// Lint fixture: the cosmic-layer header that phi/uplink.hpp illegally
// includes. Lint fodder for tests/lint_fixtures.cmake — never compiled.
#pragma once

namespace fixture_cosmic {

struct Middleware {
  int queue_depth = 0;
};

}  // namespace fixture_cosmic
