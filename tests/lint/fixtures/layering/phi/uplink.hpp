// Lint fixture: layering. Lint fodder for tests/lint_fixtures.cmake —
// never compiled. phi/ sits BELOW cosmic/ in the architecture DAG
// (cosmic orchestrates phi devices, not the other way around), so a phi
// header reaching up into cosmic/ inverts the dependency. Both includes
// below cross the DAG; the second carries an allow() and is suppressed.
#pragma once

#include "../cosmic/mw.hpp"  // line 8: layering (phi -> cosmic climbs the DAG)
// phisched-lint: allow(layering)  (grandfathered edge, tracked elsewhere)
#include "../cosmic/mw.hpp"

namespace fixture_phi {

inline int probe(const fixture_cosmic::Middleware& mw) {
  return mw.queue_depth;
}

}  // namespace fixture_phi
