// Lint fixture: include-cycle (1/2). Lint fodder for
// tests/lint_fixtures.cmake — never compiled. a.hpp and b.hpp include
// each other; the guards make it compile, but the cycle still pins build
// order and makes refactors fragile, so the lint bans it outright. The
// finding is anchored at the lexicographically-smallest member (this
// file), on its include of the other member.
#pragma once

#include "b.hpp"  // line 9: include-cycle (a.hpp <-> b.hpp)

namespace fixture_sim {

struct A {
  B* peer = nullptr;
};

}  // namespace fixture_sim
