// Lint fixture: include-cycle (2/2) — see a.hpp. Never compiled.
#pragma once

#include "a.hpp"

namespace fixture_sim {

struct B {
  A* peer = nullptr;
};

}  // namespace fixture_sim
