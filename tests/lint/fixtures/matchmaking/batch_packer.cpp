// Lint fixture: pointer-key via the batch* filename scope. Lint fodder
// for tests/lint_fixtures.cmake — never compiled. It lives OUTSIDE every
// decision-path directory on purpose: the filename prefix alone must pull
// it into scope, pinning the rule that batch-packing code
// (src/knapsack/batch*) stays linted wherever it moves. Line numbers are
// asserted by the test; append below the suppressed block only.
#include <map>

struct MachineAd {};

struct PackState {
  // Keying placements on ad addresses orders them by allocation, so the
  // pack enumeration varies run to run.
  std::map<MachineAd*, int> placements_;  // line 14: violation

  // Address-identity memo: only ever probed by find(), never iterated.
  // phisched-lint: allow(pointer-key)
  std::map<MachineAd*, int> memo_;  // line 18: suppressed
};
