// Lint fixture: unordered-iter via the strategy* filename scope. Lint
// fodder for tests/lint_fixtures.cmake — never compiled. It lives OUTSIDE
// every decision-path directory on purpose: the filename prefix alone must
// pull it into scope, pinning the rule that matchmaking-strategy code
// (src/condor/strategy*) stays linted wherever it moves. Line numbers are
// asserted by the test; append below the suppressed block only.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct Candidate {
  std::uint64_t job = 0;
  double rank = 0.0;
};

struct MatchTable {
  std::unordered_map<std::uint64_t, Candidate> by_job_;

  // Picking the first acceptable candidate in hash order makes the match
  // depend on the map's bucket layout — a decision-path hazard.
  Candidate first_match() const {
    for (const auto& [job, cand] : by_job_) {  // line 22: violation
      if (cand.rank > 0.0) return cand;
    }
    return Candidate{};
  }

  double total_rank() const {
    double sum = 0.0;
    // Commutative fold: no ordering can leak into the result.
    // phisched-lint: allow(unordered-iter)
    for (const auto& [job, cand] : by_job_) {  // line 32: suppressed
      sum += cand.rank;
    }
    return sum;
  }
};
