// Lint fixture: float-order. Lint fodder for tests/lint_fixtures.cmake —
// never compiled. This file lives OUTSIDE the decision paths (obs/ is
// report-side code) to pin down that float-order fires everywhere:
// floating-point addition is not associative, so a sum taken in
// hash-table iteration order changes bits between runs even when the
// addends are identical — which breaks byte-identical exports.
// unordered-iter must stay quiet here (not a decision path); the
// accumulation itself is the finding. Line numbers are asserted.
#include <numeric>
#include <unordered_map>

double export_total(const std::unordered_map<int, double>& samples) {
  double sum = 0.0;
  for (const auto& [key, value] : samples) {  // line 14: float-order
    sum += value;
  }
  return sum;
}

double documented_tolerant_total(const std::unordered_map<int, double>& m) {
  double sum = 0.0;
  // The consumer rounds to whole units, so bit drift is acceptable here.
  // phisched-lint: allow(float-order)  (suppresses the loop on line 24)
  for (const auto& [key, value] : m) {
    sum += value;
  }
  return sum;
}

double accumulate_total(const std::unordered_map<int, double>& samples) {
  return std::accumulate(samples.begin(), samples.end(), 0.0,  // line 31
                         [](double acc, const auto& kv) {
                           return acc + kv.second;
                         });
}

// Negative control: an integral accumulator is order-independent, so the
// same loop shape over the same container must not be flagged.
long count_total(const std::unordered_map<int, long>& samples) {
  long n = 0;
  for (const auto& [key, value] : samples) n += value;
  return n;
}
