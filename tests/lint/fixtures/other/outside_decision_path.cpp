// Lint fixture: negative control for path classification. This file is NOT
// under a decision-path directory (sim/ phi/ cosmic/ condor/ cluster/), so
// the path-scoped rules (unordered-iter, schedule-tiebreak) must stay quiet
// even though both patterns appear below. Path-independent rules would
// still fire, so this file deliberately contains none of their triggers —
// in particular the reduction below accumulates into an *integral* total,
// because float-order fires everywhere (fp addition in hash order breaks
// byte-identical exports even in report-only code).
#include <algorithm>
#include <unordered_map>
#include <vector>

struct Sample {
  double time = 0.0;
};

long report_total(const std::unordered_map<int, long>& counters) {
  long sum = 0;
  for (const auto& [key, value] : counters) sum += value;  // report-only code
  return sum;
}

void order_samples(std::vector<Sample>& samples) {
  std::sort(samples.begin(), samples.end(), [](const Sample& a, const Sample& b) {
    return a.time < b.time;  // fine here: not simulator decision code
  });
}
