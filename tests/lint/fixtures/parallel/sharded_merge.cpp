// Lint fixture: unordered-iter via the sharded* filename scope. This file
// is lint fodder for tests/lint_fixtures.cmake — it is never compiled. It
// lives OUTSIDE every decision-path directory on purpose: the filename
// prefix alone must pull it into scope, pinning the rule that parallel
// merge code stays linted wherever it moves. Line numbers are asserted by
// the test; append below the suppressed block only.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct PendingEvent {
  double time = 0.0;
  std::uint64_t seq = 0;
};

struct ShardMerger {
  std::unordered_map<int, std::vector<PendingEvent>> per_shard_;

  // The classic merge hazard: visiting shard queues in hash order decides
  // which tied event wins, so the merged order varies run to run.
  std::vector<PendingEvent> merge() const {
    std::vector<PendingEvent> out;
    for (const auto& [shard, queue] : per_shard_) {  // line 23: violation
      out.insert(out.end(), queue.begin(), queue.end());
    }
    return out;
  }

  std::size_t total_pending() const {
    std::size_t n = 0;
    // Count-only fold: no ordering can leak into the result.
    // phisched-lint: allow(unordered-iter)
    for (const auto& [shard, queue] : per_shard_) {  // line 32: suppressed
      n += queue.size();
    }
    return n;
  }
};
