// Lint fixture: telemetry-schema pass. Lint fodder for
// tests/lint_fixtures.cmake — never compiled. Exercised by a separate
// phisched_lint invocation with --schema-docs/--golden pointed at the
// sibling telemetry.md and golden/ so the cross-check rules fire in
// isolation from the real repo schema.
//
// Expected: the concatenated counter and both events are documented; the
// gauge name is misspelled (schema-undocumented); the second annotation
// uses a bogus kind (schema-undocumented, malformed).
#include <string>

struct Reg {
  void counter(const std::string&, double) {}
  void gauge(const std::string&, double) {}
  void event(double, const std::string&, int) {}
};

void register_device(Reg& r, int d) {
  r.counter("phi.node0.mic" + std::to_string(d) + ".oversub_episodes", 1);
  r.gauge("phi.node0.mic0.oom_kils", 0);  // line 20: schema-undocumented (typo)
  r.event(0.0, "job_completed", 42);
}

void forward_failure(Reg& r, const std::string& type) {
  // The event type flows in as a parameter, so the extractor cannot see
  // the name; the annotation below declares it.
  // phisched-lint: emits(event job_failed)
  r.event(0.0, type, 0);
}

// line 32: schema-undocumented (malformed annotation — bogus kind)
// phisched-lint: emits(tempo job_lost)
