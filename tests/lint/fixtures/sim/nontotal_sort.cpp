// Lint fixture: nontotal-sort. Lint fodder for tests/lint_fixtures.cmake —
// never compiled. Line numbers are asserted by the test.
#include <algorithm>
#include <vector>

struct Job {
  int prio = 0;
  int seq = 0;
};

void order_jobs(std::vector<Job>& jobs) {
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.prio <= b.prio && a.seq <= b.seq;  // line 12: violation (call site)
  });
}

void order_jobs_allowed(std::vector<Job>& jobs) {
  // Fixture-only suppression example; real code should fix the comparator.
  // phisched-lint: allow(nontotal-sort)
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.prio <= b.prio && a.seq <= b.seq;  // suppressed at line 20
  });
}
