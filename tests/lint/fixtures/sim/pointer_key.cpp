// Lint fixture: pointer-key. Lint fodder for tests/lint_fixtures.cmake —
// never compiled. Line numbers are asserted by the test.
#include <map>

struct Device {};

struct Registry {
  std::map<Device*, int> slots_;  // line 8: violation

  // Address-identity cache: only ever probed by find(), never iterated.
  // phisched-lint: allow(pointer-key)
  std::map<Device*, int> cache_;  // line 12: suppressed
};
