// Lint fixture: rng-discipline. Lint fodder for tests/lint_fixtures.cmake —
// never compiled. Randomness outside common/rng's seeded-engine plumbing
// breaks run-to-run reproducibility; std::shuffle is additionally
// implementation-defined even with a seeded engine. Line numbers are
// asserted by the test.
#include <algorithm>
#include <random>
#include <vector>

int hardware_seed() {
  std::random_device rd;  // line 11: rng-discipline (anywhere token)
  return static_cast<int>(rd());
}

void scramble(std::vector<int>& v) {
  std::mt19937 gen(42);                 // line 16: rng-discipline
  std::shuffle(v.begin(), v.end(), gen);  // line 17: rng-discipline
}

int documented_legacy_seed() {
  // phisched-lint: allow(rng-discipline)  (suppresses line 22)
  return rand();
}

// Negative controls: member access and foreign qualifiers are not the
// C library / <random> — the rule must stay quiet on all of these.
struct FakeEngine {
  int rand() const { return 4; }
  static int random() { return 4; }
};
int negative_controls(const FakeEngine& e) {
  return e.rand() + FakeEngine::random();
}
