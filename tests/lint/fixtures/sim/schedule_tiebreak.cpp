// Lint fixture: schedule-tiebreak. Lint fodder for tests/lint_fixtures.cmake
// — never compiled. Line numbers are asserted by the test.
#include <algorithm>
#include <vector>

struct Event {
  double time = 0.0;
  unsigned long seq = 0;
};

void order_events(std::vector<Event>& events) {
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.time < b.time;  // line 12: violation (call site)
  });
}

void order_events_total(std::vector<Event>& events) {
  // Clean: explicit (time, seq) tie-break — same shape as the simulator heap.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
}

void order_events_stable(std::vector<Event>& events) {
  // Clean: stable_sort's stability IS the deterministic tie-break.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.time < b.time;
                   });
}

void order_events_allowed(std::vector<Event>& events) {
  // Fixture-only suppression example.
  // phisched-lint: allow(schedule-tiebreak)
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.time < b.time;  // suppressed at line 35
  });
}
