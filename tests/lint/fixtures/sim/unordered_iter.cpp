// Lint fixture: unordered-iter. This file is lint fodder for
// tests/lint_fixtures.cmake — it is never compiled. The `sim/` directory
// component makes it a decision path. Line numbers are asserted by the
// test; append below the suppressed block only.
#include <unordered_map>

struct Scheduler {
  std::unordered_map<int, double> load_;

  double total() const {
    double sum = 0.0;
    for (const auto& [device, load] : load_) sum += load;  // line 12: violation
    return sum;
  }

  double total_allowed() const {
    double sum = 0.0;
    // Values-only fold: order cannot leak into the result.
    // phisched-lint: allow(unordered-iter)
    for (const auto& [device, load] : load_) sum += load;  // line 20: suppressed
    return sum;
  }
};
