// Lint fixture: wall-clock + rng-discipline. Lint fodder for
// tests/lint_fixtures.cmake — never compiled. Line numbers are asserted.
#include <cstdlib>
#include <ctime>

long jitter_seed() {
  return time(nullptr) + rand();  // line 7: wall-clock AND rng-discipline
}

long logged_wall_clock() {
  // Log-only timestamp, never feeds a simulation decision.
  return time(nullptr);  // phisched-lint: allow(wall-clock)  (line 12)
}
