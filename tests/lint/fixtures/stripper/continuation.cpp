// Lint fixture: backslash-continued line comments — this comment ends \
   with a backslash, so time(nullptr) here and rand() here are still \
   comment text and must not fire. Never compiled.
long real_seed() {
  return time(nullptr);  // line 5: wall-clock (scanner recovered)
}
