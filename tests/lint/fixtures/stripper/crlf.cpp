// Lint fixture: CRLF line endings - every line here ends in \r\n.
// A comment mentioning time(nullptr) stays a comment across CRLF.
long crlf_seed() {
  return time(nullptr);  // line 4: wall-clock
}
