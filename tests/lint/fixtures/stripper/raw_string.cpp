// Lint fixture: raw-string hardening. Every violation token below lives
// inside a raw-string body (plain, prefixed, and one with a )"-lookalike
// in the middle) and must not fire; the real call at the end pins that
// the scanner's string state recovered. Never compiled.
const char* plain = R"(time(nullptr) + rand() via std::system_clock)";
const char* prefixed = u8R"ph(std::mt19937 gen(std::random_device{}());)ph";
const char* tricky = R"xy(a quote " and a fake close )" still inside)xy";
long after_raw() {
  return time(nullptr);  // line 9: wall-clock (the only finding here)
}
