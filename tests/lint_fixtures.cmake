# phisched_lint fixture tests. Four sections:
#
#   1. human mode over the full fixture tree — exact `file:line: [rule]`
#      positions for every rule family (pattern rules, the layering /
#      include-cycle / unused-include graph passes, the rng-discipline and
#      float-order determinism rules, and the sanitizer regression fixtures
#      under stripper/), the suppression behaviour, and the summary counts
#   2. JSON mode over the same tree — machine-readable records with exact
#      (file, line, rule) triples, including suppressed entries
#   3. the telemetry-schema pass over fixtures/schema with its own
#      telemetry.md and golden/ — schema-undocumented, schema-orphan (doc
#      orphans, malformed lines, bench ghosts) and schema-golden, in both
#      output modes, plus the --schema-out artifact
#   4. exit-code contract: 0 on clean input, 1 on findings, 2 on usage
#      errors, and --list-rules covering all thirteen rule ids
#
# Invoked by ctest as:
#   cmake -DLINT=<phisched_lint> -DFIXTURES=<tests/lint/fixtures>
#         -DWORKDIR=<scratch dir> -P lint_fixtures.cmake

function(assert_contains haystack needle what)
  string(FIND "${haystack}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${what}: expected to find '${needle}' in:\n${haystack}")
  endif()
endfunction()

function(assert_not_contains haystack needle what)
  string(FIND "${haystack}" "${needle}" at)
  if(NOT at EQUAL -1)
    message(FATAL_ERROR "${what}: must NOT contain '${needle}':\n${haystack}")
  endif()
endfunction()

# Asserts one pretty-printed JSON record: the file suffix, line, rule, and
# suppressed flag must appear as one contiguous block.
function(assert_json_record haystack file line rule suppressed what)
  set(needle "${file}\",\n      \"line\": ${line},\n      \"rule\": \"${rule}\",\n      \"suppressed\": ${suppressed}")
  assert_contains("${haystack}" "${needle}" "${what}")
endfunction()

if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

# ---------------------------------------------------------------------------
# 1. Human mode over the full fixture tree: exit 1, exact file:line rules
# ---------------------------------------------------------------------------
execute_process(
  COMMAND ${LINT} ${FIXTURES}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "human mode: expected exit 1 on fixtures, got ${rc}\n${out}${err}")
endif()

# Pattern rules.
assert_contains("${out}" "sim/unordered_iter.cpp:12: [unordered-iter]" "human")
assert_contains("${out}" "sim/wall_clock.cpp:7: [wall-clock]" "human")
assert_contains("${out}" "sim/wall_clock.cpp:7: [rng-discipline]" "human rand on same line")
assert_contains("${out}" "sim/pointer_key.cpp:8: [pointer-key]" "human")
assert_contains("${out}" "sim/nontotal_sort.cpp:12: [nontotal-sort]" "human")
assert_contains("${out}" "sim/schedule_tiebreak.cpp:12: [schedule-tiebreak]" "human")
assert_contains("${out}" "parallel/sharded_merge.cpp:23: [unordered-iter]" "human sharded scope")
assert_contains("${out}" "matchmaking/strategy_order.cpp:22: [unordered-iter]" "human strategy scope")
assert_contains("${out}" "matchmaking/batch_packer.cpp:14: [pointer-key]" "human batch scope")
assert_contains("${out}" "core/addon_bw.cpp:15: [unordered-iter]" "human core scope")

# rng-discipline: anywhere tokens, call tokens, and declaration immunity.
assert_contains("${out}" "sim/rng_discipline.cpp:11: [rng-discipline]" "human random_device")
assert_contains("${out}" "sim/rng_discipline.cpp:16: [rng-discipline]" "human mt19937")
assert_contains("${out}" "sim/rng_discipline.cpp:17: [rng-discipline]" "human shuffle")
assert_not_contains("${out}" "rng_discipline.cpp:28" "member decl 'int rand()' is not a call")
assert_not_contains("${out}" "rng_discipline.cpp:29" "member decl 'static int random()' is not a call")
assert_not_contains("${out}" "rng_discipline.cpp:32" "member/qualified access is not libc")

# float-order fires everywhere (obs/ is not a decision path).
assert_contains("${out}" "obs/float_order.cpp:14: [float-order]" "human range-for reduction")
assert_contains("${out}" "obs/float_order.cpp:31: [float-order]" "human std::accumulate")
assert_not_contains("${out}" "float_order.cpp:41" "integral accumulator is order-independent")
assert_contains("${out}" "sim/unordered_iter.cpp:12: [float-order]" "human float-order stacks with unordered-iter")

# Layering / include-cycle / unused-include over the include graph.
assert_contains("${out}" "layering/phi/uplink.hpp:8: [layering]" "human layering")
assert_contains("${out}" "phi may not depend on cosmic" "human layering message names layers")
assert_contains("${out}" "layering/sim/a.hpp:9: [include-cycle]" "human cycle anchor")
assert_contains("${out}" "a.hpp <-> " "human cycle members listed")
assert_contains("${out}" "layering/common/consumer.cpp:6: [unused-include]" "human unused include")
assert_not_contains("${out}" "consumer.cpp:5" "used.hpp is credited via UsedThing")

# Sanitizer regressions: raw strings, CRLF endings, comment continuations.
assert_contains("${out}" "stripper/raw_string.cpp:9: [wall-clock]" "human after raw strings")
assert_not_contains("${out}" "raw_string.cpp:5" "violations inside R\"(...)\" bodies")
assert_not_contains("${out}" "raw_string.cpp:6" "violations inside prefixed raw strings")
assert_not_contains("${out}" "raw_string.cpp:7" "fake )\" close inside delimited raw string")
assert_contains("${out}" "stripper/crlf.cpp:4: [wall-clock]" "human CRLF line mapping")
assert_not_contains("${out}" "crlf.cpp:2" "comment under CRLF stays a comment")
assert_contains("${out}" "stripper/continuation.cpp:5: [wall-clock]" "human after continued comment")
assert_not_contains("${out}" "continuation.cpp:2" "backslash-continued comment line 2")
assert_not_contains("${out}" "continuation.cpp:3" "backslash-continued comment line 3")

assert_contains("${out}" "25 finding(s), 13 suppressed, 24 file(s) scanned" "human summary")

# Suppressed instances must not surface as findings in human mode.
assert_not_contains("${out}" "addon_bw.cpp:25: [unordered-iter]" "human suppressed")
assert_not_contains("${out}" "consumer.cpp:8: [unused-include]" "human suppressed")
assert_not_contains("${out}" "uplink.hpp:10: [layering]" "human suppressed")
assert_not_contains("${out}" "batch_packer.cpp:18: [pointer-key]" "human suppressed")
assert_not_contains("${out}" "strategy_order.cpp:32: [unordered-iter]" "human suppressed")
assert_not_contains("${out}" "float_order.cpp:24: [float-order]" "human suppressed")
assert_not_contains("${out}" "sharded_merge.cpp:33: [unordered-iter]" "human suppressed")
assert_not_contains("${out}" "nontotal_sort.cpp:20: [nontotal-sort]" "human suppressed")
assert_not_contains("${out}" "pointer_key.cpp:12: [pointer-key]" "human suppressed")
assert_not_contains("${out}" "rng_discipline.cpp:22: [rng-discipline]" "human suppressed")
assert_not_contains("${out}" "schedule_tiebreak.cpp:36: [schedule-tiebreak]" "human suppressed")
assert_not_contains("${out}" "unordered_iter.cpp:20: [unordered-iter]" "human suppressed")
assert_not_contains("${out}" "wall_clock.cpp:12: [wall-clock]" "human suppressed")

# Path-scoped rules must stay quiet outside decision paths.
assert_not_contains("${out}" "outside_decision_path" "negative control")

# The schema fixture source produces no findings without --schema-docs:
# the schema pass only runs when asked (or auto-discovered beside a src root).
assert_not_contains("${out}" "schema-undocumented" "schema pass off by default")

# ---------------------------------------------------------------------------
# 2. JSON mode: machine-readable findings incl. suppressed entries
# ---------------------------------------------------------------------------
execute_process(
  COMMAND ${LINT} --json ${FIXTURES}
  OUTPUT_VARIABLE jout
  ERROR_VARIABLE jerr
  RESULT_VARIABLE jrc)
if(NOT jrc EQUAL 1)
  message(FATAL_ERROR "json mode: expected exit 1 on fixtures, got ${jrc}\n${jout}${jerr}")
endif()
assert_contains("${jout}" "\"tool\": \"phisched_lint\"" "json header")
assert_contains("${jout}" "\"schema_version\": 2" "json schema version")
assert_contains("${jout}" "\"files_scanned\": 24" "json counts")
assert_contains("${jout}" "\"findings\": 25" "json counts")
assert_contains("${jout}" "\"suppressed\": 13" "json counts")
foreach(rule unordered-iter wall-clock rng-discipline float-order pointer-key
             nontotal-sort schedule-tiebreak layering include-cycle
             unused-include)
  assert_contains("${jout}" "\"rule\": \"${rule}\"" "json rule ids")
endforeach()

# Exact (file, line, rule, suppressed) records, one per rule family.
assert_json_record("${jout}" "sim/wall_clock.cpp" 7 "wall-clock" "false" "json wall-clock")
assert_json_record("${jout}" "sim/rng_discipline.cpp" 11 "rng-discipline" "false" "json rng")
assert_json_record("${jout}" "obs/float_order.cpp" 14 "float-order" "false" "json float-order")
assert_json_record("${jout}" "obs/float_order.cpp" 31 "float-order" "false" "json accumulate")
assert_json_record("${jout}" "layering/phi/uplink.hpp" 8 "layering" "false" "json layering")
assert_json_record("${jout}" "layering/sim/a.hpp" 9 "include-cycle" "false" "json cycle")
assert_json_record("${jout}" "layering/common/consumer.cpp" 6 "unused-include" "false" "json unused")
assert_json_record("${jout}" "stripper/crlf.cpp" 4 "wall-clock" "false" "json crlf")
# Suppressed records stay listed in JSON so stale allows remain visible.
assert_json_record("${jout}" "layering/phi/uplink.hpp" 10 "layering" "true" "json suppressed layering")
assert_json_record("${jout}" "sim/rng_discipline.cpp" 22 "rng-discipline" "true" "json suppressed rng")
assert_json_record("${jout}" "obs/float_order.cpp" 24 "float-order" "true" "json suppressed float-order")

# ---------------------------------------------------------------------------
# 3. Telemetry-schema pass over fixtures/schema (own docs + goldens)
# ---------------------------------------------------------------------------
set(schema_args ${FIXTURES}/schema
    --schema-docs ${FIXTURES}/schema/telemetry.md
    --golden ${FIXTURES}/schema/golden
    --schema-out ${WORKDIR}/lint_fixture_schema.json)
execute_process(
  COMMAND ${LINT} ${schema_args}
  OUTPUT_VARIABLE sout
  ERROR_VARIABLE serr
  RESULT_VARIABLE src)
if(NOT src EQUAL 1)
  message(FATAL_ERROR "schema mode: expected exit 1, got ${src}\n${sout}${serr}")
endif()
assert_contains("${sout}" "src/phi/dev.cpp:20: [schema-undocumented]" "schema typo at call site")
assert_contains("${sout}" "phi.node0.mic0.oom_kils" "schema typo names the extracted pattern")
assert_contains("${sout}" "src/phi/dev.cpp:32: [schema-undocumented]" "schema malformed emits annotation")
assert_contains("${sout}" "telemetry.md:19: [schema-orphan]" "schema doc orphan (typo's other face)")
assert_contains("${sout}" "telemetry.md:22: [schema-orphan]" "schema doc orphan (ghost gauge)")
assert_contains("${sout}" "telemetry.md:25: [schema-orphan]" "schema malformed doc line")
assert_contains("${sout}" "telemetry.md:28: [schema-orphan]" "schema bench ghost")
assert_contains("${sout}" "golden/BENCH_fixture.json:6: [schema-golden]" "schema golden typo")
assert_not_contains("${sout}" "telemetry.md:24" "allow(schema-orphan) suppresses the doc line")
assert_not_contains("${sout}" "oversub_episodes" "documented concatenated counter matches")
assert_not_contains("${sout}" "job_completed" "documented event matches")
assert_not_contains("${sout}" "job_failed" "emits() annotation covers the indirection")
assert_contains("${sout}" "7 finding(s), 1 suppressed, 1 file(s) scanned" "schema summary")

# The extracted-schema artifact: wildcarded concatenation and the
# annotation-declared event must both be present.
file(READ ${WORKDIR}/lint_fixture_schema.json sjson)
assert_contains("${sjson}" "\"kind\": \"counter\", \"pattern\": \"phi.node0.mic*.oversub_episodes\"" "schema-out concat pattern")
assert_contains("${sjson}" "\"kind\": \"event\", \"pattern\": \"job_failed\"" "schema-out annotation event")
assert_contains("${sjson}" "\"kind\": \"gauge\", \"pattern\": \"phi.node0.mic0.oom_kils\"" "schema-out records the typo too")

# JSON mode carries the schema rules with the same positions.
execute_process(
  COMMAND ${LINT} --json ${schema_args}
  OUTPUT_VARIABLE sjout
  RESULT_VARIABLE sjrc)
if(NOT sjrc EQUAL 1)
  message(FATAL_ERROR "schema json mode: expected exit 1, got ${sjrc}\n${sjout}")
endif()
assert_contains("${sjout}" "\"findings\": 7" "schema json counts")
assert_contains("${sjout}" "\"suppressed\": 1" "schema json counts")
assert_json_record("${sjout}" "src/phi/dev.cpp" 20 "schema-undocumented" "false" "schema json typo")
assert_json_record("${sjout}" "telemetry.md" 22 "schema-orphan" "false" "schema json orphan")
assert_json_record("${sjout}" "telemetry.md" 24 "schema-orphan" "true" "schema json suppressed orphan")
assert_json_record("${sjout}" "golden/BENCH_fixture.json" 6 "schema-golden" "false" "schema json golden")

# ---------------------------------------------------------------------------
# 4. Exit-code contract and rule listing
# ---------------------------------------------------------------------------
execute_process(
  COMMAND ${LINT} ${FIXTURES}/other
  OUTPUT_VARIABLE cout
  RESULT_VARIABLE crc)
if(NOT crc EQUAL 0)
  message(FATAL_ERROR "clean dir: expected exit 0, got ${crc}\n${cout}")
endif()
assert_contains("${cout}" "0 finding(s), 0 suppressed" "clean summary")

execute_process(COMMAND ${LINT} RESULT_VARIABLE urc OUTPUT_QUIET ERROR_QUIET)
if(NOT urc EQUAL 2)
  message(FATAL_ERROR "no-args: expected exit 2, got ${urc}")
endif()
execute_process(COMMAND ${LINT} ${FIXTURES}/does_not_exist
  RESULT_VARIABLE mrc OUTPUT_QUIET ERROR_QUIET)
if(NOT mrc EQUAL 2)
  message(FATAL_ERROR "missing path: expected exit 2, got ${mrc}")
endif()

execute_process(
  COMMAND ${LINT} --list-rules
  OUTPUT_VARIABLE rules
  RESULT_VARIABLE rrc)
if(NOT rrc EQUAL 0)
  message(FATAL_ERROR "--list-rules: expected exit 0, got ${rrc}")
endif()
foreach(rule unordered-iter wall-clock rng-discipline float-order pointer-key
             nontotal-sort schedule-tiebreak layering include-cycle
             unused-include schema-undocumented schema-orphan schema-golden)
  assert_contains("${rules}" "${rule}\t" "--list-rules covers every rule")
endforeach()

message(STATUS "lint fixture assertions passed")
