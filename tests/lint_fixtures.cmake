# phisched_lint fixture tests: each rule has a fixture file with one known
# violation and one suppressed instance; this script asserts exact rule IDs
# and file:line positions in both human and --json output, the suppression
# counts, the decision-path negative control, and the exit codes.
#
# Invoked by ctest as:
#   cmake -DLINT=<phisched_lint> -DFIXTURES=<tests/lint/fixtures> -P lint_fixtures.cmake

function(assert_contains haystack needle what)
  string(FIND "${haystack}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${what}: expected to find '${needle}' in:\n${haystack}")
  endif()
endfunction()

function(assert_not_contains haystack needle what)
  string(FIND "${haystack}" "${needle}" at)
  if(NOT at EQUAL -1)
    message(FATAL_ERROR "${what}: must NOT contain '${needle}':\n${haystack}")
  endif()
endfunction()

# --- human mode over the full fixture tree: exit 1, exact file:line rules ---
execute_process(
  COMMAND ${LINT} ${FIXTURES}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "human mode: expected exit 1 on fixtures, got ${rc}\n${out}${err}")
endif()

assert_contains("${out}" "sim/unordered_iter.cpp:12: [unordered-iter]" "human")
assert_contains("${out}" "sim/wall_clock.cpp:7: [wall-clock]" "human")
assert_contains("${out}" "sim/pointer_key.cpp:8: [pointer-key]" "human")
assert_contains("${out}" "sim/nontotal_sort.cpp:12: [nontotal-sort]" "human")
assert_contains("${out}" "sim/schedule_tiebreak.cpp:12: [schedule-tiebreak]" "human")
assert_contains("${out}" "parallel/sharded_merge.cpp:23: [unordered-iter]" "human sharded scope")
assert_contains("${out}" "matchmaking/strategy_order.cpp:22: [unordered-iter]" "human strategy scope")
assert_contains("${out}" "matchmaking/batch_packer.cpp:14: [pointer-key]" "human batch scope")
assert_contains("${out}" "core/addon_bw.cpp:15: [unordered-iter]" "human core scope")
assert_contains("${out}" "10 finding(s), 9 suppressed, 10 file(s) scanned" "human summary")
# Suppressed instances must not surface as findings in human mode.
assert_not_contains("${out}" "unordered_iter.cpp:20" "human suppressed")
assert_not_contains("${out}" "wall_clock.cpp:12" "human suppressed")
assert_not_contains("${out}" "pointer_key.cpp:12" "human suppressed")
assert_not_contains("${out}" "nontotal_sort.cpp:20" "human suppressed")
assert_not_contains("${out}" "schedule_tiebreak.cpp:35" "human suppressed")
assert_not_contains("${out}" "sharded_merge.cpp:32" "human suppressed")
assert_not_contains("${out}" "strategy_order.cpp:32" "human suppressed")
assert_not_contains("${out}" "batch_packer.cpp:18" "human suppressed")
assert_not_contains("${out}" "addon_bw.cpp:25" "human suppressed")
# Path-scoped rules must stay quiet outside decision paths.
assert_not_contains("${out}" "outside_decision_path" "negative control")

# --- JSON mode: machine-readable findings incl. suppressed entries --------
execute_process(
  COMMAND ${LINT} --json ${FIXTURES}
  OUTPUT_VARIABLE jout
  ERROR_VARIABLE jerr
  RESULT_VARIABLE jrc)
if(NOT jrc EQUAL 1)
  message(FATAL_ERROR "json mode: expected exit 1 on fixtures, got ${jrc}\n${jout}${jerr}")
endif()
assert_contains("${jout}" "\"tool\": \"phisched_lint\"" "json header")
assert_contains("${jout}" "\"findings\": 10" "json counts")
assert_contains("${jout}" "\"suppressed\": 9" "json counts")
foreach(rule unordered-iter wall-clock pointer-key nontotal-sort schedule-tiebreak)
  assert_contains("${jout}" "\"rule\": \"${rule}\"" "json rule ids")
endforeach()
# Spot-check one active and one suppressed record's file/line pairing.
assert_contains("${jout}" "sim/unordered_iter.cpp\"" "json file")
assert_contains("${jout}" "parallel/sharded_merge.cpp\"" "json sharded file")
assert_contains("${jout}" "\"line\": 23" "json sharded line")
assert_contains("${jout}" "matchmaking/strategy_order.cpp\"" "json strategy file")
assert_contains("${jout}" "matchmaking/batch_packer.cpp\"" "json batch file")
assert_contains("${jout}" "core/addon_bw.cpp\"" "json core file")
assert_contains("${jout}" "\"line\": 15" "json core line")
assert_contains("${jout}" "\"line\": 14" "json batch line")
assert_contains("${jout}" "\"line\": 12" "json line")
assert_contains("${jout}" "\"line\": 20" "json suppressed line")
assert_contains("${jout}" "\"suppressed\": true" "json suppressed flag")

# --- clean input: exit 0 ---------------------------------------------------
execute_process(
  COMMAND ${LINT} ${FIXTURES}/other
  OUTPUT_VARIABLE cout
  RESULT_VARIABLE crc)
if(NOT crc EQUAL 0)
  message(FATAL_ERROR "clean dir: expected exit 0, got ${crc}\n${cout}")
endif()
assert_contains("${cout}" "0 finding(s), 0 suppressed" "clean summary")

# --- usage errors: exit 2 --------------------------------------------------
execute_process(COMMAND ${LINT} RESULT_VARIABLE urc OUTPUT_QUIET ERROR_QUIET)
if(NOT urc EQUAL 2)
  message(FATAL_ERROR "no-args: expected exit 2, got ${urc}")
endif()
execute_process(COMMAND ${LINT} ${FIXTURES}/does_not_exist
  RESULT_VARIABLE mrc OUTPUT_QUIET ERROR_QUIET)
if(NOT mrc EQUAL 2)
  message(FATAL_ERROR "missing path: expected exit 2, got ${mrc}")
endif()

message(STATUS "lint fixture assertions passed")
