# Keeps docs/architecture.md literally in sync with the layer DAG the lint
# enforces: `phisched_lint --list-layers` prints the dependency table, and
# the doc must contain that exact text (inside its fenced block). Editing
# either side without the other fails this test.
#
# Invoked by ctest as:
#   cmake -DLINT=<phisched_lint> -DDOC=<repo>/docs/architecture.md
#         -P lint_layer_sync.cmake

execute_process(
  COMMAND ${LINT} --list-layers
  OUTPUT_VARIABLE table
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-layers: expected exit 0, got ${rc}")
endif()
if(table STREQUAL "")
  message(FATAL_ERROR "--list-layers printed nothing")
endif()

file(READ ${DOC} doc)
string(FIND "${doc}" "${table}" at)
if(at EQUAL -1)
  message(FATAL_ERROR
    "docs/architecture.md is out of sync with the enforced layer DAG.\n"
    "`phisched_lint --list-layers` prints:\n${table}\n"
    "Paste that table verbatim into the 'Enforced layer DAG' block of ${DOC}.")
endif()

message(STATUS "layer table in docs/architecture.md matches --list-layers")
