# Whole-tree lint gate. Two invocations:
#
#   1. the bare repo gate `phisched_lint src` — pointing the tool at a
#      directory named src auto-discovers ../docs/telemetry.md and
#      ../bench/golden, so this one exit code covers the determinism
#      pattern rules, the architecture-layer DAG over the include graph,
#      AND the telemetry-schema cross-check (extracted names vs the
#      documented schema vs the golden bench metrics). Any drift between
#      code, docs/telemetry.md, and bench/golden fails here.
#   2. the same gate with --graph-out/--schema-out, producing the
#      include-graph DOT and extracted-schema JSON artifacts that CI
#      uploads; both are sanity-checked.
#
# Invoked by ctest as:
#   cmake -DLINT=<phisched_lint> -DSRC=<repo>/src -DWORKDIR=<scratch>
#         -P lint_tree.cmake

function(assert_contains haystack needle what)
  string(FIND "${haystack}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${what}: expected to find '${needle}' in:\n${haystack}")
  endif()
endfunction()

# --- 1. the bare gate ------------------------------------------------------
execute_process(
  COMMAND ${LINT} ${SRC}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "phisched_lint src: expected exit 0 (no unsuppressed findings, schema "
    "in sync with docs/telemetry.md and bench/golden), got ${rc}\n${out}${err}")
endif()
assert_contains("${out}" "0 finding(s), 0 suppressed" "tree gate summary")

# --- 2. artifacts ----------------------------------------------------------
set(dot ${WORKDIR}/include_graph.dot)
set(schema ${WORKDIR}/telemetry_schema.json)
execute_process(
  COMMAND ${LINT} ${SRC} --graph-out ${dot} --schema-out ${schema}
  OUTPUT_VARIABLE aout
  ERROR_VARIABLE aerr
  RESULT_VARIABLE arc)
if(NOT arc EQUAL 0)
  message(FATAL_ERROR "artifact run: expected exit 0, got ${arc}\n${aout}${aerr}")
endif()

if(NOT EXISTS ${dot})
  message(FATAL_ERROR "--graph-out did not write ${dot}")
endif()
file(READ ${dot} dot_text)
assert_contains("${dot_text}" "digraph includes" "dot header")
assert_contains("${dot_text}" "label=\"sim\"" "dot layer clusters")
assert_contains("${dot_text}" "->" "dot edges")

if(NOT EXISTS ${schema})
  message(FATAL_ERROR "--schema-out did not write ${schema}")
endif()
file(READ ${schema} schema_text)
assert_contains("${schema_text}" "\"tool\": \"phisched_lint\"" "schema header")
assert_contains("${schema_text}" "\"schema_version\": 2" "schema version")
assert_contains("${schema_text}" "\"kind\": \"counter\"" "schema counters present")
assert_contains("${schema_text}" "\"kind\": \"event\"" "schema events present")
assert_contains("${schema_text}" "oversub_episodes" "a known metric extracted")

message(STATUS "lint tree gate + artifacts passed")
