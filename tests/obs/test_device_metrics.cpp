// Satellite coverage: drive one phi::Device past its 240 hardware
// threads and past its usable memory, and check the telemetry layer
// counts each oversubscription episode and OOM kill exactly once, with
// matching events.
#include <gtest/gtest.h>

#include "obs/recorder.hpp"
#include "phi/device.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

class DeviceMetricsTest : public ::testing::Test {
 protected:
  Simulator sim_;
  obs::Recorder rec_;
};

TEST_F(DeviceMetricsTest, OversubEpisodeCountedOncePerEpisode) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  dev.attach_process(3, 16, nullptr);

  // 240 + 240 threads: demand 480 > 240 — the episode begins.
  dev.start_offload(1, 240, 10, 1.0, nullptr);
  dev.start_offload(2, 240, 10, 2.0, nullptr);
  EXPECT_EQ(dev.stats().oversub_episodes, 1u);

  // A third offload joins the SAME episode: still one.
  dev.start_offload(3, 120, 10, 1.0, nullptr);
  EXPECT_EQ(dev.stats().oversub_episodes, 1u);

  sim_.run();  // all offloads drain; the episode ends

  // A fresh overload after recovery is a second episode.
  dev.start_offload(1, 240, 10, 1.0, nullptr);
  dev.start_offload(2, 240, 10, 1.0, nullptr);
  EXPECT_EQ(dev.stats().oversub_episodes, 2u);
  sim_.run();

  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.oversub_episodes"), 2u);
  EXPECT_EQ(rec_.events().of_type("oversub_begin").size(), 2u);
  EXPECT_EQ(rec_.events().of_type("oversub_end").size(), 2u);
}

TEST_F(DeviceMetricsTest, StayingWithinBudgetRecordsNoEpisode) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  dev.start_offload(1, 120, 10, 1.0, nullptr);
  dev.start_offload(2, 120, 10, 1.0, nullptr);  // exactly 240: not over
  sim_.run();
  EXPECT_EQ(dev.stats().oversub_episodes, 0u);
  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.oversub_episodes"), 0u);
  EXPECT_TRUE(rec_.events().of_type("oversub_begin").empty());
}

TEST_F(DeviceMetricsTest, OomKillCountedOnceWithEvent) {
  Device dev(sim_, DeviceConfig{}, Rng(7));
  dev.attach_telemetry(rec_, "phi.test.mic0");

  int killed = 0;
  KillReason seen = KillReason::kAdmin;
  dev.attach_process(1, 4000, [&](JobId, KillReason r) {
    ++killed;
    seen = r;
  });
  // The device has 8192 - 512 = 7680 usable MiB; the second process
  // pushes residency past it and the OOM killer fires exactly once.
  dev.attach_process(2, 4000, [&](JobId, KillReason r) {
    ++killed;
    seen = r;
  });

  EXPECT_EQ(killed, 1);
  EXPECT_EQ(seen, KillReason::kOom);
  EXPECT_EQ(dev.stats().oom_kills, 1u);

  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.oom_kills"), 1u);
  const auto kills = rec_.events().of_type("kill");
  ASSERT_EQ(kills.size(), 1u);
  ASSERT_GE(kills[0].fields.size(), 3u);
  EXPECT_EQ(kills[0].fields[0].first, "device");
  EXPECT_EQ(kills[0].fields[0].second, "phi.test.mic0");
  EXPECT_EQ(kills[0].fields[2].first, "reason");
  EXPECT_EQ(kills[0].fields[2].second, "oom");
}

TEST_F(DeviceMetricsTest, OffloadCountersAndSpeedSeries) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  // 2x oversubscription at exponent 3 → speed 1/8 for the whole overlap.
  dev.start_offload(1, 240, 10, 1.0, nullptr);
  dev.start_offload(2, 240, 10, 1.0, nullptr);
  sim_.run();

  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.offloads_started"), 2u);
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.offloads_completed"), 2u);
  // Both offloads ran at speed 0.125 until they finished together.
  EXPECT_NEAR(snap.metrics.gauges.at("phi.test.mic0.speed.mean"), 0.125, 1e-9);
  // The time histogram charged the whole 8-second run to the bin holding
  // speed 0.125 (bin 1 of 10 over [0, 1)).
  const auto& hist =
      snap.metrics.histograms.at("phi.test.mic0.speed_seconds");
  ASSERT_EQ(hist.counts.size(), 10u);
  EXPECT_NEAR(hist.counts[1], sim_.now(), 1e-9);
}

TEST_F(DeviceMetricsTest, ContainerResidencyGaugesTrackProcessLifecycle) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(7, 512, nullptr);
  dev.start_offload(7, 60, 256, 1.0, nullptr);
  sim_.run();
  dev.detach_process(7);

  // Residency: 768 MiB (base 512 + working set 256) over the 1 s offload,
  // back to 512 at completion, 0 after detach — the gauge integrates to
  // 768 MiB·s exactly when the drop-to-zero sample lands. Threads follow
  // the running offload: 60 for 1 s.
  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_DOUBLE_EQ(
      snap.metrics.gauges.at("phi.test.mic0.container7.resident_mb.integral"),
      768.0);
  EXPECT_DOUBLE_EQ(
      snap.metrics.gauges.at("phi.test.mic0.container7.threads.integral"),
      60.0);
}

TEST_F(DeviceMetricsTest, KilledContainerGaugeDropsToZero) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(3, 1000, [](JobId, KillReason) {});
  sim_.schedule_at(2.0, [&] {
    dev.kill_process(3, KillReason::kAdmin);
  });
  sim_.run();
  // 1000 MiB over [0, 2], zero afterwards: integral 2000 however long the
  // snapshot horizon — the kill path records the terminal zero sample.
  const auto snap = obs::take_snapshot(rec_, 5.0);
  EXPECT_DOUBLE_EQ(
      snap.metrics.gauges.at("phi.test.mic0.container3.resident_mb.integral"),
      2000.0);
}

TEST_F(DeviceMetricsTest, OversubEpisodeOpenAtRunEndIsClosed) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  dev.start_offload(1, 240, 10, 4.0, nullptr);
  dev.start_offload(2, 240, 10, 4.0, nullptr);  // demand 480: episode opens
  sim_.run_until(1.0);  // stop the simulation mid-episode
  dev.finalize_telemetry();

  EXPECT_EQ(dev.stats().oversub_episodes, 1u);
  EXPECT_EQ(rec_.events().of_type("oversub_begin").size(), 1u);
  const auto ends = rec_.events().of_type("oversub_end");
  ASSERT_EQ(ends.size(), 1u);
  // The synthesized closing event is marked so dashboards can tell a real
  // drain from a truncated run.
  ASSERT_FALSE(ends[0].fields.empty());
  EXPECT_EQ(ends[0].fields.back().first, "at_run_end");
  // Busy-core time was flushed up to the stop time, not left at zero.
  EXPECT_GT(dev.core_utilization(1.0), 0.0);

  // Idempotent: a second finalize must not emit a second end event.
  dev.finalize_telemetry();
  EXPECT_EQ(rec_.events().of_type("oversub_end").size(), 1u);
}

TEST_F(DeviceMetricsTest, DetachedDeviceRecordsNothing) {
  Device dev(sim_, DeviceConfig{}, Rng(1));  // no attach_telemetry
  dev.attach_process(1, 4000, nullptr);
  dev.attach_process(2, 4000, nullptr);  // OOM kill, silently
  EXPECT_EQ(dev.stats().oom_kills, 1u);
  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_TRUE(snap.metrics.counters.empty());
  EXPECT_TRUE(snap.events.empty());
}

}  // namespace
}  // namespace phisched::phi
