// Satellite coverage: drive one phi::Device past its 240 hardware
// threads and past its usable memory, and check the telemetry layer
// counts each oversubscription episode and OOM kill exactly once, with
// matching events.
#include <gtest/gtest.h>

#include "obs/recorder.hpp"
#include "phi/device.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

class DeviceMetricsTest : public ::testing::Test {
 protected:
  Simulator sim_;
  obs::Recorder rec_;
};

TEST_F(DeviceMetricsTest, OversubEpisodeCountedOncePerEpisode) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  dev.attach_process(3, 16, nullptr);

  // 240 + 240 threads: demand 480 > 240 — the episode begins.
  dev.start_offload(1, 240, 10, 1.0, nullptr);
  dev.start_offload(2, 240, 10, 2.0, nullptr);
  EXPECT_EQ(dev.stats().oversub_episodes, 1u);

  // A third offload joins the SAME episode: still one.
  dev.start_offload(3, 120, 10, 1.0, nullptr);
  EXPECT_EQ(dev.stats().oversub_episodes, 1u);

  sim_.run();  // all offloads drain; the episode ends

  // A fresh overload after recovery is a second episode.
  dev.start_offload(1, 240, 10, 1.0, nullptr);
  dev.start_offload(2, 240, 10, 1.0, nullptr);
  EXPECT_EQ(dev.stats().oversub_episodes, 2u);
  sim_.run();

  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.oversub_episodes"), 2u);
  EXPECT_EQ(rec_.events().of_type("oversub_begin").size(), 2u);
  EXPECT_EQ(rec_.events().of_type("oversub_end").size(), 2u);
}

TEST_F(DeviceMetricsTest, StayingWithinBudgetRecordsNoEpisode) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  dev.start_offload(1, 120, 10, 1.0, nullptr);
  dev.start_offload(2, 120, 10, 1.0, nullptr);  // exactly 240: not over
  sim_.run();
  EXPECT_EQ(dev.stats().oversub_episodes, 0u);
  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.oversub_episodes"), 0u);
  EXPECT_TRUE(rec_.events().of_type("oversub_begin").empty());
}

TEST_F(DeviceMetricsTest, OomKillCountedOnceWithEvent) {
  Device dev(sim_, DeviceConfig{}, Rng(7));
  dev.attach_telemetry(rec_, "phi.test.mic0");

  int killed = 0;
  KillReason seen = KillReason::kAdmin;
  dev.attach_process(1, 4000, [&](JobId, KillReason r) {
    ++killed;
    seen = r;
  });
  // The device has 8192 - 512 = 7680 usable MiB; the second process
  // pushes residency past it and the OOM killer fires exactly once.
  dev.attach_process(2, 4000, [&](JobId, KillReason r) {
    ++killed;
    seen = r;
  });

  EXPECT_EQ(killed, 1);
  EXPECT_EQ(seen, KillReason::kOom);
  EXPECT_EQ(dev.stats().oom_kills, 1u);

  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.oom_kills"), 1u);
  const auto kills = rec_.events().of_type("kill");
  ASSERT_EQ(kills.size(), 1u);
  ASSERT_GE(kills[0].fields.size(), 3u);
  EXPECT_EQ(kills[0].fields[0].first, "device");
  EXPECT_EQ(kills[0].fields[0].second, "phi.test.mic0");
  EXPECT_EQ(kills[0].fields[2].first, "reason");
  EXPECT_EQ(kills[0].fields[2].second, "oom");
}

TEST_F(DeviceMetricsTest, OffloadCountersAndSpeedSeries) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_telemetry(rec_, "phi.test.mic0");
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  // 2x oversubscription at exponent 3 → speed 1/8 for the whole overlap.
  dev.start_offload(1, 240, 10, 1.0, nullptr);
  dev.start_offload(2, 240, 10, 1.0, nullptr);
  sim_.run();

  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.offloads_started"), 2u);
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.offloads_completed"), 2u);
  // Both offloads ran at speed 0.125 until they finished together.
  EXPECT_NEAR(snap.metrics.gauges.at("phi.test.mic0.speed.mean"), 0.125, 1e-9);
  // The time histogram charged the whole 8-second run to the bin holding
  // speed 0.125 (bin 1 of 10 over [0, 1)).
  const auto& hist =
      snap.metrics.histograms.at("phi.test.mic0.speed_seconds");
  ASSERT_EQ(hist.counts.size(), 10u);
  EXPECT_NEAR(hist.counts[1], sim_.now(), 1e-9);
}

TEST_F(DeviceMetricsTest, DetachedDeviceRecordsNothing) {
  Device dev(sim_, DeviceConfig{}, Rng(1));  // no attach_telemetry
  dev.attach_process(1, 4000, nullptr);
  dev.attach_process(2, 4000, nullptr);  // OOM kill, silently
  EXPECT_EQ(dev.stats().oom_kills, 1u);
  const auto snap = obs::take_snapshot(rec_, sim_.now());
  EXPECT_TRUE(snap.metrics.counters.empty());
  EXPECT_TRUE(snap.events.empty());
}

}  // namespace
}  // namespace phisched::phi
