// Golden-file regression for the telemetry JSON export: the exact bytes
// of snapshot_json for a hand-built recorder are pinned under
// tests/obs/golden/. Regenerate intentionally with
//   PHISCHED_REGEN_GOLDEN=1 ctest -R JsonExport
// after a deliberate schema change, and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "obs/recorder.hpp"

namespace phisched::obs {
namespace {

[[nodiscard]] std::string golden_path() {
  return std::string(PHISCHED_TEST_DATA_DIR) + "/obs/golden/snapshot.json";
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// A small recorder exercising every instrument kind, with values chosen
/// to cover integers, fractions, and empty-vs-populated sections.
[[nodiscard]] Recorder make_reference_recorder() {
  Recorder rec;
  Registry& m = rec.metrics();
  m.counter("phi.node0.mic0.oom_kills").inc(2);
  m.counter("condor.negotiator.cycles").inc(7);
  m.gauge("cluster.makespan_s").set(123.5);
  m.gauge("cluster.avg_core_utilization").set(0.7421875);
  m.series("cosmic.node0.mic0.queue_depth").set(0.0, 0.0);
  m.series("cosmic.node0.mic0.queue_depth").set(2.0, 3.0);
  m.series("cosmic.node0.mic0.queue_depth").set(6.0, 1.0);
  m.time_histogram("phi.node0.mic0.speed_seconds", 0.0, 1.0, 4).set(0.0, 1.0);
  m.time_histogram("phi.node0.mic0.speed_seconds", 0.0, 1.0, 4).set(4.0, 0.125);
  m.histogram("cluster.job_slowdown", 0.0, 10.0, 5).add(1.5);
  m.histogram("cluster.job_slowdown", 0.0, 10.0, 5).add(3.25);
  rec.event(1.5, "oversub_begin",
            {{"device", "phi.node0.mic0"}, {"demand", "480"}});
  rec.event(4.0, "kill", {{"job", "3"}, {"reason", "oom"}});
  return rec;
}

TEST(JsonExport, SnapshotMatchesGoldenFile) {
  const Recorder rec = make_reference_recorder();
  const Snapshot snap = take_snapshot(rec, 10.0);
  const std::string doc = snapshot_json(snap, /*pretty=*/true);
  ASSERT_TRUE(json_valid(doc));

  if (std::getenv("PHISCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << doc;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  const std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path()
      << " — run with PHISCHED_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(doc, golden);
}

TEST(JsonExport, MetricsJsonHasStableSchema) {
  const Recorder rec = make_reference_recorder();
  const std::string doc = metrics_json(rec.metrics().snapshot(10.0));
  ASSERT_TRUE(json_valid(doc));
  // Schema anchors the dashboards rely on.
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
  EXPECT_NE(doc.find("\"cosmic.node0.mic0.queue_depth.mean\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"lo\""), std::string::npos);
  EXPECT_NE(doc.find("\"counts\""), std::string::npos);
}

TEST(JsonExport, EventsJsonPreservesOrderAndFields) {
  const Recorder rec = make_reference_recorder();
  const std::string doc = events_json(rec.events().events());
  ASSERT_TRUE(json_valid(doc));
  EXPECT_EQ(doc.find("oversub_begin") < doc.find("\"kill\""), true);
  EXPECT_NE(doc.find("\"t\":1.5"), std::string::npos);
  EXPECT_NE(doc.find("\"reason\":\"oom\""), std::string::npos);
}

TEST(JsonExport, EmptyRecorderSerializesCleanly) {
  const Recorder rec;
  const Snapshot snap = take_snapshot(rec, 0.0);
  const std::string doc = snapshot_json(snap);
  EXPECT_TRUE(json_valid(doc));
  EXPECT_EQ(doc,
            R"({"metrics":{"counters":{},"gauges":{},"histograms":{}},)"
            R"("events":[]})");
}

TEST(JsonExport, SerializationIsDeterministic) {
  const Recorder a = make_reference_recorder();
  const Recorder b = make_reference_recorder();
  EXPECT_EQ(snapshot_json(take_snapshot(a, 10.0), true),
            snapshot_json(take_snapshot(b, 10.0), true));
}

}  // namespace
}  // namespace phisched::obs
