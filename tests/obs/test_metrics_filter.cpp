// Prefix selection behind the CLI's --metrics-filter: filter_metrics
// keeps instruments by dotted-name prefix, filter_events keeps events by
// type or identity-field prefix.
#include <gtest/gtest.h>

#include "obs/recorder.hpp"

namespace phisched::obs {
namespace {

[[nodiscard]] Recorder make_recorder() {
  Recorder rec;
  Registry& m = rec.metrics();
  m.counter("phi.node0.mic0.oom_kills").inc(2);
  m.counter("phi.node0.mic0.pcie.bytes_in").inc(4096);
  m.counter("phi.node1.mic0.oom_kills").inc(1);
  m.counter("cosmic.node0.offloads_admitted").inc(9);
  m.gauge("cluster.makespan_s").set(42.0);
  m.series("phi.node0.mic0.pcie.busy_frac").set(0.0, 1.0);
  m.series("cosmic.node0.mic0.queue_depth").set(0.0, 2.0);
  m.histogram("cluster.job_slowdown", 0.0, 10.0, 5).add(1.5);
  rec.event(1.0, "pcie_xfer_begin",
            {{"link", "phi.node0.mic0.pcie"}, {"job", "3"}});
  rec.event(2.0, "kill", {{"device", "phi.node1.mic0"}, {"job", "5"}});
  rec.event(3.0, "negotiation_cycle", {{"cycle", "1"}});
  return rec;
}

TEST(MetricsFilter, EmptyPrefixListKeepsEverything) {
  const Recorder rec = make_recorder();
  const MetricsSnapshot snap = rec.metrics().snapshot(10.0);
  const MetricsSnapshot kept = filter_metrics(snap, {});
  EXPECT_EQ(kept.counters.size(), snap.counters.size());
  EXPECT_EQ(kept.gauges.size(), snap.gauges.size());
  EXPECT_EQ(kept.histograms.size(), snap.histograms.size());
  EXPECT_EQ(filter_events(rec.events().events(), {}).size(), 3u);
}

TEST(MetricsFilter, PrefixSelectsAcrossInstrumentKinds) {
  const Recorder rec = make_recorder();
  const MetricsSnapshot kept =
      filter_metrics(rec.metrics().snapshot(10.0), {"phi.node0.mic0.pcie"});
  ASSERT_EQ(kept.counters.size(), 1u);
  EXPECT_EQ(kept.counters.count("phi.node0.mic0.pcie.bytes_in"), 1u);
  // The series flattens to .mean/.integral gauges; both carry the prefix.
  EXPECT_EQ(kept.gauges.count("phi.node0.mic0.pcie.busy_frac.mean"), 1u);
  EXPECT_EQ(kept.gauges.count("phi.node0.mic0.pcie.busy_frac.integral"), 1u);
  EXPECT_EQ(kept.gauges.count("cluster.makespan_s"), 0u);
  EXPECT_TRUE(kept.histograms.empty());
}

TEST(MetricsFilter, MultiplePrefixesUnion) {
  const Recorder rec = make_recorder();
  const MetricsSnapshot kept = filter_metrics(rec.metrics().snapshot(10.0),
                                              {"cluster.", "cosmic.node0"});
  EXPECT_EQ(kept.counters.count("cosmic.node0.offloads_admitted"), 1u);
  EXPECT_EQ(kept.gauges.count("cluster.makespan_s"), 1u);
  EXPECT_EQ(kept.histograms.count("cluster.job_slowdown"), 1u);
  EXPECT_EQ(kept.counters.count("phi.node0.mic0.oom_kills"), 0u);
}

TEST(MetricsFilter, EventsMatchOnTypeOrFieldValue) {
  const Recorder rec = make_recorder();
  // By field value: the kill event carries device=phi.node1.mic0.
  const auto by_field = filter_events(rec.events().events(), {"phi.node1"});
  ASSERT_EQ(by_field.size(), 1u);
  EXPECT_EQ(by_field[0].type, "kill");
  // By type prefix.
  const auto by_type = filter_events(rec.events().events(), {"pcie_"});
  ASSERT_EQ(by_type.size(), 1u);
  EXPECT_EQ(by_type[0].type, "pcie_xfer_begin");
  // No match drops everything.
  EXPECT_TRUE(filter_events(rec.events().events(), {"nope."}).empty());
}

}  // namespace
}  // namespace phisched::obs
