// Golden-file regression for the PCIe-link and per-container telemetry:
// a fixed device scenario with the contention model on must export the
// exact JSON pinned under tests/obs/golden/pcie_snapshot.json.
// Regenerate intentionally with
//   PHISCHED_REGEN_GOLDEN=1 ctest -R PcieGolden
// after a deliberate schema change, and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "obs/recorder.hpp"
#include "phi/device.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

[[nodiscard]] std::string golden_path() {
  return std::string(PHISCHED_TEST_DATA_DIR) + "/obs/golden/pcie_snapshot.json";
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(PcieGolden, DeviceScenarioMatchesGoldenFile) {
  Simulator sim;
  obs::Recorder rec;
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  config.pcie.contention = true;
  config.pcie.bandwidth_mib_s = 1000.0;
  Device dev(sim, config, Rng(7));
  dev.attach_telemetry(rec, "phi.node0.mic0");

  // Two containers; their input transfers overlap on the link (1000 MiB
  // and 500 MiB from t=0, fair-share), each starts an offload on arrival,
  // and container 1 pays an output transfer after its offload drains.
  dev.attach_process(1, 512, nullptr);
  dev.attach_process(2, 256, nullptr);
  dev.pcie_link().start_transfer(1, 1000, XferDir::kIn, [&] {
    dev.start_offload(1, 60, 200, 2.0, nullptr);
  });
  dev.pcie_link().start_transfer(2, 500, XferDir::kIn, [&] {
    dev.start_offload(2, 30, 100, 1.0, nullptr);
  });
  sim.run();
  dev.pcie_link().start_transfer(1, 250, XferDir::kOut, nullptr);
  sim.run();
  dev.finalize_telemetry();

  const obs::Snapshot snap = obs::take_snapshot(rec, sim.now());
  const std::string doc = obs::snapshot_json(snap, /*pretty=*/true);
  ASSERT_TRUE(json_valid(doc));

  if (std::getenv("PHISCHED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << doc;
    GTEST_SKIP() << "regenerated " << golden_path();
  }

  const std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path()
      << " — run with PHISCHED_REGEN_GOLDEN=1 to create it";
  EXPECT_EQ(doc, golden);
}

}  // namespace
}  // namespace phisched::phi
