#include "phi/affinity.hpp"

#include <gtest/gtest.h>

namespace phisched::phi {
namespace {

CoreMap make_map() { return CoreMap(60, 4, Rng(1)); }

TEST(CoreMap, EmptyMap) {
  CoreMap map = make_map();
  EXPECT_EQ(map.busy_cores(), 0);
  EXPECT_EQ(map.placed_threads(), 0);
  EXPECT_FALSE(map.has_overlap());
  EXPECT_EQ(map.cores(), 60);
  EXPECT_EQ(map.threads_per_core(), 4);
}

TEST(CoreMap, ManagedCompactUsesMinimalCores) {
  CoreMap map = make_map();
  // COSMIC example: 120 threads = 30 cores at 4 threads/core.
  (void)map.allocate(120, AffinityPolicy::kManagedCompact);
  EXPECT_EQ(map.busy_cores(), 30);
  EXPECT_EQ(map.placed_threads(), 120);
  EXPECT_FALSE(map.has_overlap());
  EXPECT_EQ(map.oversubscribed_cores(), 0);
}

TEST(CoreMap, TwoManagedAllocationsAreDisjoint) {
  // The paper: two 120-thread jobs each get their own set of 30 cores,
  // utilizing all 60 cores with no overlap.
  CoreMap map = make_map();
  (void)map.allocate(120, AffinityPolicy::kManagedCompact);
  (void)map.allocate(120, AffinityPolicy::kManagedCompact);
  EXPECT_EQ(map.busy_cores(), 60);
  EXPECT_FALSE(map.has_overlap());
}

TEST(CoreMap, UnmanagedScatterSpreadsOnePerCore) {
  // MPSS/OpenMP default: a 60-thread offload spreads over 60 cores.
  CoreMap map = make_map();
  (void)map.allocate(60, AffinityPolicy::kUnmanagedScatter);
  EXPECT_EQ(map.busy_cores(), 60);
  EXPECT_FALSE(map.has_overlap());
}

TEST(CoreMap, UnmanagedScatterWrapsBeyondCores) {
  CoreMap map = make_map();
  (void)map.allocate(180, AffinityPolicy::kUnmanagedScatter);
  EXPECT_EQ(map.busy_cores(), 60);  // 3 threads on each core
  EXPECT_EQ(map.placed_threads(), 180);
  EXPECT_EQ(map.oversubscribed_cores(), 0);
}

TEST(CoreMap, TwoUnmanagedAllocationsOverlap) {
  CoreMap map = make_map();
  (void)map.allocate(120, AffinityPolicy::kUnmanagedScatter);
  (void)map.allocate(120, AffinityPolicy::kUnmanagedScatter);
  // 120 threads spread over 60 cores each → guaranteed overlap.
  EXPECT_TRUE(map.has_overlap());
}

TEST(CoreMap, SmallScatterMayMissOverlap) {
  CoreMap map = make_map();
  (void)map.allocate(4, AffinityPolicy::kUnmanagedScatter);
  EXPECT_EQ(map.busy_cores(), 4);  // one thread per core, 4 cores
}

TEST(CoreMap, ReleaseRestoresState) {
  CoreMap map = make_map();
  const AllocationId a = map.allocate(120, AffinityPolicy::kManagedCompact);
  const AllocationId b = map.allocate(120, AffinityPolicy::kManagedCompact);
  map.release(a);
  EXPECT_EQ(map.busy_cores(), 30);
  EXPECT_EQ(map.placed_threads(), 120);
  map.release(b);
  EXPECT_EQ(map.busy_cores(), 0);
  EXPECT_EQ(map.placed_threads(), 0);
}

TEST(CoreMap, ReleaseUnknownThrows) {
  CoreMap map = make_map();
  EXPECT_THROW(map.release(999), std::invalid_argument);
}

TEST(CoreMap, DoubleReleaseThrows) {
  CoreMap map = make_map();
  const AllocationId a = map.allocate(8, AffinityPolicy::kManagedCompact);
  map.release(a);
  EXPECT_THROW(map.release(a), std::invalid_argument);
}

TEST(CoreMap, CompactOversubscriptionWrapsAround) {
  CoreMap map = make_map();
  (void)map.allocate(240, AffinityPolicy::kManagedCompact);
  (void)map.allocate(240, AffinityPolicy::kManagedCompact);
  EXPECT_EQ(map.placed_threads(), 480);
  EXPECT_EQ(map.busy_cores(), 60);
  EXPECT_EQ(map.oversubscribed_cores(), 60);
  EXPECT_TRUE(map.has_overlap());
}

TEST(CoreMap, CompactPrefersLeastLoadedCores) {
  CoreMap map = make_map();
  (void)map.allocate(236, AffinityPolicy::kManagedCompact);  // 59 cores, 1 partial
  (void)map.allocate(4, AffinityPolicy::kManagedCompact);
  // The 4-thread allocation should land on the remaining free core.
  EXPECT_EQ(map.oversubscribed_cores(), 0);
  EXPECT_EQ(map.busy_cores(), 60);
}

TEST(CoreMap, RejectsBadArguments) {
  CoreMap map = make_map();
  EXPECT_THROW((void)map.allocate(0, AffinityPolicy::kManagedCompact),
               std::invalid_argument);
  EXPECT_THROW(CoreMap(0, 4, Rng(1)), std::invalid_argument);
  EXPECT_THROW(CoreMap(60, 0, Rng(1)), std::invalid_argument);
}

class ScatterWidth : public ::testing::TestWithParam<ThreadCount> {};

TEST_P(ScatterWidth, BusyCoresIsMinThreadsCores) {
  CoreMap map = make_map();
  (void)map.allocate(GetParam(), AffinityPolicy::kUnmanagedScatter);
  EXPECT_EQ(map.busy_cores(), std::min<ThreadCount>(GetParam(), 60));
}

INSTANTIATE_TEST_SUITE_P(Widths, ScatterWidth,
                         ::testing::Values(1, 15, 30, 59, 60, 61, 120, 180,
                                           239, 240));

}  // namespace
}  // namespace phisched::phi
