// Per-device capability layer: the KNC spec table, the --devices fleet
// grammar, and the homogeneous identity the equivalence suite depends on
// (a parsed "5110P" must equal the default-constructed capability).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "phi/capability.hpp"

namespace phisched::phi {
namespace {

TEST(Capability, DefaultIsThe5110P) {
  const DeviceCapability def;
  EXPECT_EQ(def.generation, "5110P");
  const auto parsed = capability_from_generation("5110P");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, def);
  // The spec-table row must also match PhiHardware's defaults exactly —
  // this identity is what makes `--devices N` and `--devices Nx5110P`
  // bit-identical.
  EXPECT_EQ(def.hw, PhiHardware{});
}

TEST(Capability, SpecTableGeometry) {
  const auto a = capability_from_generation("3120A");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->hw.cores, 57);
  EXPECT_EQ(a->hw.memory_mib, 6144);
  EXPECT_EQ(a->mem_bandwidth_mib_s, 245760.0);

  const auto p = capability_from_generation("7120P");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hw.cores, 61);
  EXPECT_EQ(p->hw.memory_mib, 16384);
  EXPECT_EQ(p->mem_bandwidth_mib_s, 360448.0);

  // All KNC SKUs sit on the same x16 Gen2 link.
  EXPECT_EQ(a->link_bandwidth_mib_s, p->link_bandwidth_mib_s);
}

TEST(Capability, LookupIsCaseInsensitive) {
  EXPECT_TRUE(capability_from_generation("7120p").has_value());
  EXPECT_TRUE(capability_from_generation("3120a").has_value());
  EXPECT_FALSE(capability_from_generation("8120P").has_value());
  EXPECT_FALSE(capability_from_generation("").has_value());
}

TEST(Capability, ParseSpecCountsAndOrder) {
  const auto fleet = parse_device_spec("2x5110P+1x7120P");
  ASSERT_EQ(fleet.size(), 3u);
  EXPECT_EQ(fleet[0].generation, "5110P");
  EXPECT_EQ(fleet[1].generation, "5110P");
  EXPECT_EQ(fleet[2].generation, "7120P");
}

TEST(Capability, ParseSpecBareGenerationMeansOne) {
  const auto fleet = parse_device_spec("7120P");
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0].generation, "7120P");
}

TEST(Capability, SpecRoundTrips) {
  for (const char* spec :
       {"2x5110P+1x7120P", "5110P", "3x3120A", "7120P+7120P"}) {
    const auto fleet = parse_device_spec(spec);
    const std::string canonical = device_spec_to_string(fleet);
    EXPECT_EQ(parse_device_spec(canonical), fleet) << spec;
  }
  // Canonical form run-length encodes and omits the 1x prefix.
  EXPECT_EQ(device_spec_to_string(parse_device_spec("5110P+5110P+7120P")),
            "2x5110P+7120P");
}

TEST(Capability, ParseSpecRejectsMalformedInput) {
  EXPECT_THROW(parse_device_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_device_spec("+"), std::invalid_argument);
  EXPECT_THROW(parse_device_spec("2x5110P+"), std::invalid_argument);
  EXPECT_THROW(parse_device_spec("0x5110P"), std::invalid_argument);
  EXPECT_THROW(parse_device_spec("-1x5110P"), std::invalid_argument);
  EXPECT_THROW(parse_device_spec("2x"), std::invalid_argument);
  EXPECT_THROW(parse_device_spec("2xKNL"), std::invalid_argument);
  EXPECT_THROW(parse_device_spec("5110"), std::invalid_argument);
}

TEST(Capability, UnknownGenerationErrorNamesTheOptions) {
  try {
    parse_device_spec("2xKNL");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("KNL"), std::string::npos);
    EXPECT_NE(what.find("5110P"), std::string::npos);
  }
}

TEST(MemBw, BudgetIsSaturationFraction) {
  const DeviceCapability cap;  // 5110P: 327680 MiB/s aggregate
  MemBwConfig off;
  EXPECT_LT(off.budget_mib_s(cap), 0.0);  // model off: unconstrained
  MemBwConfig on;
  on.contention = true;
  on.saturation = 0.5;
  EXPECT_DOUBLE_EQ(on.budget_mib_s(cap), 163840.0);
}

}  // namespace
}  // namespace phisched::phi
