#include "phi/device.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  Device make_device(DeviceConfig config = {}) {
    return Device(sim_, config, Rng(7), "mic0");
  }

  Simulator sim_;
};

TEST_F(DeviceTest, FreshDeviceState) {
  Device dev = make_device();
  EXPECT_EQ(dev.memory_used(), 0);
  EXPECT_EQ(dev.usable_memory(), 8192 - 512);
  EXPECT_EQ(dev.active_thread_demand(), 0);
  EXPECT_EQ(dev.busy_cores(), 0);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 1.0);
  EXPECT_EQ(dev.process_count(), 0u);
}

TEST_F(DeviceTest, AttachDetachAccounting) {
  Device dev = make_device();
  dev.attach_process(1, 16, nullptr);
  EXPECT_TRUE(dev.has_process(1));
  EXPECT_EQ(dev.memory_used(), 16);
  EXPECT_EQ(dev.process_memory(1), 16);
  dev.detach_process(1);
  EXPECT_FALSE(dev.has_process(1));
  EXPECT_EQ(dev.memory_used(), 0);
}

TEST_F(DeviceTest, DuplicateAttachThrows) {
  Device dev = make_device();
  dev.attach_process(1, 16, nullptr);
  EXPECT_THROW(dev.attach_process(1, 16, nullptr), std::invalid_argument);
}

TEST_F(DeviceTest, DetachUnknownThrows) {
  Device dev = make_device();
  EXPECT_THROW(dev.detach_process(9), std::invalid_argument);
}

TEST_F(DeviceTest, OffloadRunsForItsDuration) {
  Device dev = make_device();
  dev.attach_process(1, 16, nullptr);
  bool done = false;
  dev.start_offload(1, 120, 500, 10.0, [&] { done = true; });
  EXPECT_EQ(dev.active_thread_demand(), 120);
  EXPECT_EQ(dev.memory_used(), 516);
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim_.now(), 10.0);
  EXPECT_EQ(dev.active_thread_demand(), 0);
  EXPECT_EQ(dev.memory_used(), 16);
  EXPECT_EQ(dev.stats().offloads_completed, 1u);
}

TEST_F(DeviceTest, OffloadRequiresProcess) {
  Device dev = make_device();
  EXPECT_THROW(dev.start_offload(1, 60, 100, 1.0, nullptr),
               std::invalid_argument);
}

TEST_F(DeviceTest, DetachWithRunningOffloadThrows) {
  Device dev = make_device();
  dev.attach_process(1, 16, nullptr);
  dev.start_offload(1, 60, 100, 5.0, nullptr);
  EXPECT_THROW(dev.detach_process(1), std::invalid_argument);
}

TEST_F(DeviceTest, ConcurrentOffloadsWithinBudgetRunAtFullSpeed) {
  DeviceConfig managed;
  managed.affinity = AffinityPolicy::kManagedCompact;
  Device dev = make_device(managed);
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  SimTime t1 = -1.0;
  SimTime t2 = -1.0;
  dev.start_offload(1, 120, 100, 10.0, [&] { t1 = sim_.now(); });
  dev.start_offload(2, 120, 100, 10.0, [&] { t2 = sim_.now(); });
  EXPECT_DOUBLE_EQ(dev.current_speed(), 1.0);
  sim_.run();
  EXPECT_DOUBLE_EQ(t1, 10.0);
  EXPECT_DOUBLE_EQ(t2, 10.0);
}

TEST_F(DeviceTest, CoreUtilizationIntegration) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev = make_device(config);
  dev.attach_process(1, 0, nullptr);
  // 120 threads compact = 30 of 60 cores for 10s, then idle to 20s.
  dev.start_offload(1, 120, 100, 10.0, nullptr);
  sim_.run();
  sim_.run_until(20.0);
  EXPECT_NEAR(dev.core_utilization(20.0), 0.25, 1e-9);
}

TEST_F(DeviceTest, AdminKillCancelsOffload) {
  Device dev = make_device();
  int kills = 0;
  dev.attach_process(1, 16, [&](JobId job, KillReason reason) {
    EXPECT_EQ(job, 1u);
    EXPECT_EQ(reason, KillReason::kAdmin);
    ++kills;
  });
  bool completed = false;
  dev.start_offload(1, 60, 100, 5.0, [&] { completed = true; });
  sim_.run_until(1.0);
  dev.kill_process(1, KillReason::kAdmin);
  EXPECT_EQ(kills, 1);
  EXPECT_FALSE(dev.has_process(1));
  EXPECT_EQ(dev.memory_used(), 0);
  sim_.run();
  EXPECT_FALSE(completed);  // completion was cancelled
  EXPECT_EQ(dev.stats().admin_kills, 1u);
}

TEST_F(DeviceTest, OomKillerFiresOnMemoryOversubscription) {
  Device dev = make_device();
  std::vector<JobId> killed;
  auto on_kill = [&](JobId job, KillReason reason) {
    EXPECT_EQ(reason, KillReason::kOom);
    killed.push_back(job);
  };
  dev.attach_process(1, 4000, on_kill);
  dev.attach_process(2, 3000, on_kill);
  EXPECT_TRUE(killed.empty());  // 7000 <= 7680
  dev.attach_process(3, 2000, on_kill);  // 9000 > 7680 → someone dies
  EXPECT_FALSE(killed.empty());
  EXPECT_LE(dev.memory_used(), dev.usable_memory());
  EXPECT_GE(dev.stats().oom_kills, 1u);
}

TEST_F(DeviceTest, OomDuringOffloadMemoryGrowth) {
  Device dev = make_device();
  std::vector<JobId> killed;
  auto on_kill = [&](JobId job, KillReason) { killed.push_back(job); };
  dev.attach_process(1, 100, on_kill);
  dev.attach_process(2, 100, on_kill);
  dev.start_offload(1, 60, 4000, 10.0, nullptr);
  EXPECT_TRUE(killed.empty());
  dev.start_offload(2, 60, 4000, 10.0, nullptr);  // 8200 > 7680
  EXPECT_EQ(killed.size(), 1u);
  EXPECT_LE(dev.memory_used(), dev.usable_memory());
}

TEST_F(DeviceTest, ResidentThreadLoadSlowsOffloads) {
  DeviceConfig config;
  config.idle_spin_exponent = 1.0;  // exaggerate for the test
  Device dev = make_device(config);
  dev.attach_process(1, 16, nullptr);
  dev.set_resident_thread_load(480);  // 2x the hardware budget
  SimTime done_at = -1.0;
  dev.start_offload(1, 60, 100, 10.0, [&] { done_at = sim_.now(); });
  EXPECT_DOUBLE_EQ(dev.current_speed(), 0.5);
  sim_.run();
  EXPECT_DOUBLE_EQ(done_at, 20.0);
}

TEST_F(DeviceTest, ResidentLoadBelowBudgetIsFree) {
  Device dev = make_device();
  dev.set_resident_thread_load(240);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 1.0);
}

TEST_F(DeviceTest, SpeedChangeMidFlightStretchesRemainingWork) {
  DeviceConfig config;
  config.idle_spin_exponent = 1.0;
  Device dev = make_device(config);
  dev.attach_process(1, 16, nullptr);
  SimTime done_at = -1.0;
  dev.start_offload(1, 60, 100, 10.0, [&] { done_at = sim_.now(); });
  sim_.run_until(5.0);  // half the work done at speed 1
  dev.set_resident_thread_load(480);  // speed drops to 0.5
  sim_.run();
  // Remaining 5s of work at half speed = 10 more seconds.
  EXPECT_DOUBLE_EQ(done_at, 15.0);
}

TEST_F(DeviceTest, StatsCountStarts) {
  Device dev = make_device();
  dev.attach_process(1, 16, nullptr);
  dev.start_offload(1, 60, 0, 1.0, nullptr);
  sim_.run();
  dev.start_offload(1, 60, 0, 1.0, nullptr);
  sim_.run();
  EXPECT_EQ(dev.stats().offloads_started, 2u);
  EXPECT_EQ(dev.stats().offloads_completed, 2u);
}

TEST_F(DeviceTest, KillReasonNames) {
  EXPECT_STREQ(kill_reason_name(KillReason::kOom), "oom");
  EXPECT_STREQ(kill_reason_name(KillReason::kContainerLimit),
               "container-limit");
  EXPECT_STREQ(kill_reason_name(KillReason::kAdmin), "admin");
}

TEST_F(DeviceTest, ZeroDurationOffloadCompletesImmediately) {
  Device dev = make_device();
  dev.attach_process(1, 16, nullptr);
  bool done = false;
  dev.start_offload(1, 60, 10, 0.0, [&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim_.now(), 0.0);
}

}  // namespace
}  // namespace phisched::phi
