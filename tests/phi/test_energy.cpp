#include <gtest/gtest.h>

#include "phi/device.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(EnergyTest, IdleCardDrawsFloorPower) {
  Device dev(sim_, DeviceConfig{}, Rng(1));
  sim_.run_until(100.0);
  // Floor = 60 W base + 60 cores x 1 W idle = 120 W.
  EXPECT_DOUBLE_EQ(dev.energy_joules(100.0), 120.0 * 100.0);
}

TEST_F(EnergyTest, FullyBusyCardDrawsTdp) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_process(1, 16, nullptr);
  dev.start_offload(1, 240, 100, 100.0, nullptr);  // all 60 cores busy
  sim_.run();
  // 60 W + 60 x 2.75 W = 225 W — the KNC TDP.
  EXPECT_DOUBLE_EQ(dev.energy_joules(100.0), 225.0 * 100.0);
}

TEST_F(EnergyTest, PartialLoadInterpolates) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_process(1, 16, nullptr);
  // 120 threads compact = 30 busy cores for 50 s, then idle 50 s.
  dev.start_offload(1, 120, 100, 50.0, nullptr);
  sim_.run();
  sim_.run_until(100.0);
  const double expected =
      120.0 * 100.0                 // floor for the whole window
      + (2.75 - 1.0) * 30.0 * 50.0; // active delta on 30 cores for 50 s
  EXPECT_DOUBLE_EQ(dev.energy_joules(100.0), expected);
}

TEST_F(EnergyTest, CustomPowerModel) {
  DeviceConfig config;
  config.base_watts = 10.0;
  config.idle_core_watts = 0.5;
  config.active_core_watts = 2.0;
  Device dev(sim_, config, Rng(1));
  sim_.run_until(10.0);
  EXPECT_DOUBLE_EQ(dev.energy_joules(10.0), (10.0 + 60.0 * 0.5) * 10.0);
}

TEST_F(EnergyTest, NegativeHorizonThrows) {
  Device dev(sim_, DeviceConfig{}, Rng(1));
  EXPECT_THROW((void)dev.energy_joules(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace phisched::phi
