// Per-card memory-bandwidth contention (phi::MemBwConfig): declared
// resident shares past the saturation budget slow the card; under the
// budget — or with the model off — the speed model is untouched.
#include <gtest/gtest.h>

#include <limits>

#include "phi/device.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

DeviceConfig bw_config(double saturation = 0.5, double exponent = 1.0) {
  DeviceConfig config;
  config.mem_bw.contention = true;
  config.mem_bw.saturation = saturation;
  config.mem_bw.exponent = exponent;
  return config;
}

class MemBwTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(MemBwTest, BudgetComesFromTheCapability) {
  Device dev(sim_, bw_config(0.5), Rng(7), "mic0");
  // Default card is the 5110P: 327680 MiB/s aggregate, half usable.
  EXPECT_DOUBLE_EQ(dev.mem_bw_budget(), 163840.0);
  Device off(sim_, DeviceConfig{}, Rng(7), "mic1");
  EXPECT_LT(off.mem_bw_budget(), 0.0);
}

TEST_F(MemBwTest, LoadUnderBudgetDoesNotSlowTheCard) {
  Device dev(sim_, bw_config(), Rng(7), "mic0");
  dev.set_resident_bw_load(163840.0);  // exactly at budget
  EXPECT_DOUBLE_EQ(dev.current_speed(), 1.0);
}

TEST_F(MemBwTest, OvershootSlowsProportionally) {
  Device dev(sim_, bw_config(0.5, 1.0), Rng(7), "mic0");
  dev.set_resident_bw_load(2.0 * 163840.0);  // 2x the budget
  EXPECT_DOUBLE_EQ(dev.current_speed(), 0.5);
}

TEST_F(MemBwTest, ExponentShapesThePenalty) {
  Device dev(sim_, bw_config(0.5, 2.0), Rng(7), "mic0");
  dev.set_resident_bw_load(2.0 * 163840.0);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 0.25);
}

TEST_F(MemBwTest, ModelOffIgnoresDeclaredLoad) {
  Device dev(sim_, DeviceConfig{}, Rng(7), "mic0");
  dev.set_resident_bw_load(1e9);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 1.0);
}

TEST_F(MemBwTest, ContentionStretchesOffloads) {
  Device dev(sim_, bw_config(0.5, 1.0), Rng(7), "mic0");
  dev.attach_process(1, 16, nullptr);
  dev.set_resident_bw_load(2.0 * 163840.0);
  bool done = false;
  dev.start_offload(1, 120, 500, 10.0, [&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  // Half speed: the 10 s offload takes 20 s.
  EXPECT_DOUBLE_EQ(sim_.now(), 20.0);
}

TEST_F(MemBwTest, LoadChangeMidOffloadReschedules) {
  Device dev(sim_, bw_config(0.5, 1.0), Rng(7), "mic0");
  dev.attach_process(1, 16, nullptr);
  dev.start_offload(1, 120, 500, 10.0, nullptr);
  sim_.schedule_at(5.0, [&] { dev.set_resident_bw_load(2.0 * 163840.0); });
  sim_.run();
  // 5 s at full speed + the remaining half at half speed = 5 + 10.
  EXPECT_DOUBLE_EQ(sim_.now(), 15.0);
}

TEST_F(MemBwTest, RejectsNonFiniteOrNegativeLoad) {
  Device dev(sim_, bw_config(), Rng(7), "mic0");
  EXPECT_THROW(dev.set_resident_bw_load(-1.0), std::invalid_argument);
  EXPECT_THROW(dev.set_resident_bw_load(
                   std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(dev.set_resident_bw_load(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST_F(MemBwTest, RejectsBadSaturationOrExponent) {
  EXPECT_THROW(Device(sim_, bw_config(0.0), Rng(7), "mic0"),
               std::invalid_argument);
  EXPECT_THROW(Device(sim_, bw_config(1.5), Rng(7), "mic0"),
               std::invalid_argument);
  EXPECT_THROW(Device(sim_, bw_config(0.5, -1.0), Rng(7), "mic0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace phisched::phi
