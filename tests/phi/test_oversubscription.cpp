// Thread-oversubscription behaviour (paper Section II-C): concurrent
// offloads whose thread demand exceeds the hardware budget slow down
// super-linearly, reproducing the up-to-800% penalty reported in [6].
#include <gtest/gtest.h>

#include "phi/device.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

class OversubTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(OversubTest, TwoFullWidthOffloadsSlowEightfold) {
  // 2x thread oversubscription with exponent 3 → speed (1/2)^3 = 1/8,
  // i.e. the ~800% performance impact the paper cites.
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;  // isolate the effect
  Device dev(sim_, config, Rng(1));
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  SimTime t1 = -1.0;
  dev.start_offload(1, 240, 100, 10.0, [&] { t1 = sim_.now(); });
  dev.start_offload(2, 240, 100, 10.0, nullptr);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 0.125);
  sim_.run();
  EXPECT_DOUBLE_EQ(t1, 80.0);
}

TEST_F(OversubTest, SpeedRecoversWhenDemandDrops) {
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  SimTime long_done = -1.0;
  // Short offload at 240 threads, long offload at 240 threads.
  dev.start_offload(1, 240, 100, 1.0, nullptr);
  dev.start_offload(2, 240, 100, 10.0, [&] { long_done = sim_.now(); });
  // Both run at 1/8 speed until the short one finishes at t=8 with 9/8... :
  // short has 1s of work → done at 8.0; long has done 1s of its 10s.
  sim_.run();
  EXPECT_DOUBLE_EQ(long_done, 8.0 + 9.0);
}

TEST_F(OversubTest, ExponentOneIsWorkConserving) {
  DeviceConfig config;
  config.oversub_exponent = 1.0;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  SimTime t = -1.0;
  dev.start_offload(1, 240, 100, 10.0, [&] { t = sim_.now(); });
  dev.start_offload(2, 240, 100, 10.0, nullptr);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 0.5);
  sim_.run();
  EXPECT_DOUBLE_EQ(t, 20.0);
}

TEST_F(OversubTest, UnmanagedOverlapPaysAffinityPenalty) {
  DeviceConfig config;
  config.unmanaged_overlap_penalty = 0.2;
  config.affinity = AffinityPolicy::kUnmanagedScatter;
  Device dev(sim_, config, Rng(1));
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  // 120 + 120 threads within budget, but scattered → overlapping cores.
  dev.start_offload(1, 120, 100, 8.0, nullptr);
  dev.start_offload(2, 120, 100, 8.0, nullptr);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 0.8);
}

TEST_F(OversubTest, ManagedCompactAvoidsAffinityPenalty) {
  DeviceConfig config;
  config.unmanaged_overlap_penalty = 0.2;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim_, config, Rng(1));
  dev.attach_process(1, 16, nullptr);
  dev.attach_process(2, 16, nullptr);
  dev.start_offload(1, 120, 100, 8.0, nullptr);
  dev.start_offload(2, 120, 100, 8.0, nullptr);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 1.0);
  EXPECT_EQ(dev.busy_cores(), 60);
}

TEST_F(OversubTest, SingleOffloadNeverPenalized) {
  Device dev(sim_, DeviceConfig{}, Rng(1));
  dev.attach_process(1, 16, nullptr);
  dev.start_offload(1, 240, 100, 5.0, nullptr);
  EXPECT_DOUBLE_EQ(dev.current_speed(), 1.0);
}

class OversubSweep : public ::testing::TestWithParam<int> {};

TEST_P(OversubSweep, SlowdownIsMonotoneInDemand) {
  Simulator sim;
  DeviceConfig config;
  config.affinity = AffinityPolicy::kManagedCompact;
  Device dev(sim, config, Rng(1));
  const int n = GetParam();
  double prev_speed = 1.1;
  for (int i = 0; i < n; ++i) {
    dev.attach_process(static_cast<JobId>(i), 16, nullptr);
    dev.start_offload(static_cast<JobId>(i), 120, 10, 100.0, nullptr);
    EXPECT_LE(dev.current_speed(), prev_speed);
    prev_speed = dev.current_speed();
  }
  if (n > 2) {
    EXPECT_LT(dev.current_speed(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Demands, OversubSweep, ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace phisched::phi
