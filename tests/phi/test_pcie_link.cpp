// phi::PcieLink — fair-share bandwidth model of one card's PCIe bus.
#include <gtest/gtest.h>

#include "obs/recorder.hpp"
#include "phi/pcie.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

PcieLinkConfig link_config(double bandwidth_mib_s, double latency_s = 0.0) {
  PcieLinkConfig c;
  c.contention = true;
  c.bandwidth_mib_s = bandwidth_mib_s;
  c.latency_s = latency_s;
  return c;
}

TEST(PcieLink, DisabledByDefault) {
  Simulator sim;
  PcieLink link(sim, PcieLinkConfig{});
  EXPECT_FALSE(link.enabled());
  EXPECT_THROW(link.start_transfer(1, 100, XferDir::kIn, nullptr),
               std::invalid_argument);
}

TEST(PcieLink, SoloTransferRunsAtFullBandwidth) {
  Simulator sim;
  PcieLink link(sim, link_config(1000.0));
  SimTime done = -1.0;
  link.start_transfer(1, 2000, XferDir::kIn, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 2.0);
  EXPECT_EQ(link.stats().transfers_in, 1u);
  EXPECT_EQ(link.stats().mib_in, 2000);
}

TEST(PcieLink, TwoConcurrentTransfersEachSeeHalfBandwidth) {
  Simulator sim;
  PcieLink link(sim, link_config(1000.0));
  SimTime done1 = -1.0;
  SimTime done2 = -1.0;
  // Alone, each 1000 MiB transfer would take 1 s; sharing the link they
  // each progress at 500 MiB/s and finish together at 2 s.
  link.start_transfer(1, 1000, XferDir::kIn, [&] { done1 = sim.now(); });
  link.start_transfer(2, 1000, XferDir::kIn, [&] { done2 = sim.now(); });
  EXPECT_EQ(link.active_transfers(), 2u);
  sim.run();
  EXPECT_DOUBLE_EQ(done1, 2.0);
  EXPECT_DOUBLE_EQ(done2, 2.0);
  EXPECT_EQ(link.active_transfers(), 0u);
}

TEST(PcieLink, LateJoinerDilatesInFlightTransfer) {
  Simulator sim;
  PcieLink link(sim, link_config(1000.0));
  SimTime done1 = -1.0;
  SimTime done2 = -1.0;
  link.start_transfer(1, 1000, XferDir::kIn, [&] { done1 = sim.now(); });
  sim.schedule_at(0.5, [&] {
    link.start_transfer(2, 500, XferDir::kOut, [&] { done2 = sim.now(); });
  });
  sim.run();
  // Job 1: 500 MiB alone in [0, 0.5], then 500 MiB at half rate → 1.5 s.
  // Job 2: 500 MiB at half rate from 0.5 → also 1.5 s.
  EXPECT_DOUBLE_EQ(done1, 1.5);
  EXPECT_DOUBLE_EQ(done2, 1.5);
  EXPECT_EQ(link.stats().transfers_in, 1u);
  EXPECT_EQ(link.stats().transfers_out, 1u);
  EXPECT_EQ(link.stats().mib_out, 500);
}

TEST(PcieLink, LatencyChargedAsWireTime) {
  Simulator sim;
  PcieLink link(sim, link_config(1000.0, /*latency_s=*/0.25));
  SimTime done = -1.0;
  link.start_transfer(1, 1000, XferDir::kIn, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 1.25);
}

TEST(PcieLink, CancelJobDropsTransferAndSpeedsUpSurvivors) {
  Simulator sim;
  PcieLink link(sim, link_config(1000.0));
  SimTime done1 = -1.0;
  bool job2_done = false;
  link.start_transfer(1, 1000, XferDir::kIn, [&] { done1 = sim.now(); });
  link.start_transfer(2, 1000, XferDir::kIn, [&] { job2_done = true; });
  // At t=1 each has moved 500 MiB; dropping job 2 lets job 1 finish its
  // remaining 500 MiB at full bandwidth.
  sim.schedule_at(1.0, [&] { link.cancel_job(2); });
  sim.run();
  EXPECT_DOUBLE_EQ(done1, 1.5);
  EXPECT_FALSE(job2_done);
  EXPECT_EQ(link.stats().cancelled, 1u);
  EXPECT_EQ(link.stats().transfers_in, 1u);
  EXPECT_EQ(link.stats().mib_in, 1000);
}

TEST(PcieLink, BusyFractionIntegratesOccupancy) {
  Simulator sim;
  PcieLink link(sim, link_config(1000.0));
  link.start_transfer(1, 1000, XferDir::kIn, nullptr);
  sim.run();  // busy [0, 1]
  sim.schedule_at(3.0, [&] { link.start_transfer(1, 1000, XferDir::kIn, nullptr); });
  sim.run();  // idle [1, 3], busy [3, 4]
  EXPECT_DOUBLE_EQ(link.busy_fraction(4.0), 0.5);
}

TEST(PcieLink, TelemetryRecordsBytesDepthAndEvents) {
  Simulator sim;
  obs::Recorder rec;
  PcieLink link(sim, link_config(1000.0));
  link.attach_telemetry(rec, "phi.test.mic0.pcie");
  link.start_transfer(1, 1000, XferDir::kIn, nullptr);
  link.start_transfer(2, 600, XferDir::kOut, nullptr);
  sim.run();

  const auto snap = obs::take_snapshot(rec, sim.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.pcie.bytes_in"), 1000u);
  EXPECT_EQ(snap.metrics.counters.at("phi.test.mic0.pcie.bytes_out"), 600u);
  EXPECT_GT(snap.metrics.gauges.at("phi.test.mic0.pcie.busy_frac.integral"),
            0.0);
  EXPECT_GT(
      snap.metrics.gauges.at("phi.test.mic0.pcie.transfer_queue_depth.mean"),
      0.0);
  ASSERT_EQ(rec.events().of_type("pcie_xfer_begin").size(), 2u);
  ASSERT_EQ(rec.events().of_type("pcie_xfer_end").size(), 2u);
  const auto begin = rec.events().of_type("pcie_xfer_begin")[0];
  EXPECT_EQ(begin.fields[0].first, "link");
  EXPECT_EQ(begin.fields[0].second, "phi.test.mic0.pcie");
  EXPECT_EQ(begin.fields[2].second, "in");
}

TEST(PcieLink, RejectsNonPositiveBandwidth) {
  Simulator sim;
  PcieLinkConfig c;
  c.bandwidth_mib_s = 0.0;
  EXPECT_THROW(PcieLink(sim, c), std::invalid_argument);
}

}  // namespace
}  // namespace phisched::phi
