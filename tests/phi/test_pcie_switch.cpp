// phi::PcieSwitch — hierarchical contention: a host-side uplink shared
// by every card link on a node. Rates are min(card fair share, switch
// fair share), re-evaluated on any start/finish/cancel node-wide.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/recorder.hpp"
#include "phi/pcie.hpp"
#include "phi/pcie_switch.hpp"
#include "sim/simulator.hpp"

namespace phisched::phi {
namespace {

PcieLinkConfig link_config(double bandwidth_mib_s, double latency_s = 0.0) {
  PcieLinkConfig c;
  c.contention = true;
  c.bandwidth_mib_s = bandwidth_mib_s;
  c.latency_s = latency_s;
  return c;
}

PcieSwitchConfig switch_config(double bandwidth_mib_s) {
  PcieSwitchConfig c;
  c.enabled = true;
  c.bandwidth_mib_s = bandwidth_mib_s;
  return c;
}

/// `cards` links of `card_bw` each behind one switch of `switch_bw`.
struct Rig {
  Rig(Simulator& sim, int cards, double card_bw, double switch_bw)
      : sw(sim, switch_config(switch_bw)) {
    for (int c = 0; c < cards; ++c) {
      links.push_back(std::make_unique<PcieLink>(
          sim, link_config(card_bw), "pcie" + std::to_string(c)));
      sw.add_link(*links.back());
    }
  }
  PcieSwitch sw;
  std::vector<std::unique_ptr<PcieLink>> links;
};

TEST(PcieSwitch, DisabledByDefault) {
  Simulator sim;
  PcieSwitch sw(sim, PcieSwitchConfig{});
  EXPECT_FALSE(sw.enabled());
  PcieLink link(sim, link_config(1000.0));
  EXPECT_THROW(sw.add_link(link), std::invalid_argument);
}

TEST(PcieSwitch, RejectsDisabledLinkAndDuplicates) {
  Simulator sim;
  PcieSwitch sw(sim, switch_config(2000.0));
  PcieLink flat(sim, PcieLinkConfig{});
  EXPECT_THROW(sw.add_link(flat), std::invalid_argument);

  PcieLink link(sim, link_config(1000.0));
  sw.add_link(link);
  EXPECT_EQ(link.uplink(), &sw);
  EXPECT_THROW(sw.add_link(link), std::invalid_argument);
  EXPECT_EQ(sw.link_count(), 1u);
}

TEST(PcieSwitch, RejectsNonPositiveBandwidth) {
  Simulator sim;
  PcieSwitchConfig c;
  c.bandwidth_mib_s = 0.0;
  EXPECT_THROW(PcieSwitch(sim, c), std::invalid_argument);
}

TEST(PcieSwitch, WideUplinkMatchesFlatLinkExactly) {
  // With the uplink wide enough to never bind, every timing must be
  // bit-identical to a flat link.
  Simulator flat_sim;
  PcieLink flat(flat_sim, link_config(1000.0, 0.125));
  SimTime flat_done1 = -1.0, flat_done2 = -1.0;
  flat.start_transfer(1, 1000, XferDir::kIn,
                      [&] { flat_done1 = flat_sim.now(); });
  flat_sim.schedule_at(0.5, [&] {
    flat.start_transfer(2, 500, XferDir::kOut,
                        [&] { flat_done2 = flat_sim.now(); });
  });
  flat_sim.run();

  Simulator sim2;
  PcieSwitch sw(sim2, switch_config(1e9));
  PcieLink link(sim2, link_config(1000.0, 0.125));
  sw.add_link(link);
  SimTime done1 = -1.0, done2 = -1.0;
  link.start_transfer(1, 1000, XferDir::kIn, [&] { done1 = sim2.now(); });
  sim2.schedule_at(0.5, [&] {
    link.start_transfer(2, 500, XferDir::kOut, [&] { done2 = sim2.now(); });
  });
  sim2.run();

  EXPECT_EQ(done1, flat_done1);
  EXPECT_EQ(done2, flat_done2);
}

TEST(PcieSwitch, CrossCardContentionCapsAtUplinkFairShare) {
  // Two 1000 MiB/s cards behind a 1000 MiB/s uplink: one transfer per
  // card, each is alone on its card but gets only 500 MiB/s of uplink.
  Simulator sim;
  Rig rig(sim, 2, 1000.0, 1000.0);
  SimTime done1 = -1.0, done2 = -1.0;
  rig.links[0]->start_transfer(1, 1000, XferDir::kIn,
                               [&] { done1 = sim.now(); });
  rig.links[1]->start_transfer(2, 1000, XferDir::kIn,
                               [&] { done2 = sim.now(); });
  EXPECT_EQ(rig.sw.active_transfers(), 2u);
  sim.run();
  EXPECT_DOUBLE_EQ(done1, 2.0);
  EXPECT_DOUBLE_EQ(done2, 2.0);
  EXPECT_EQ(rig.sw.stats().transfers, 2u);
  EXPECT_EQ(rig.sw.stats().mib, 2000);
}

TEST(PcieSwitch, RateIsMinOfCardAndSwitchShares) {
  // Card 0 carries two transfers, card 1 carries one; uplink 1800 MiB/s
  // across three transfers → switch share 600. Card 0's own share is
  // 500 (< 600, card-bound); card 1's transfer alone would get 1000 but
  // is uplink-bound at 600.
  Simulator sim;
  Rig rig(sim, 2, 1000.0, 1800.0);
  SimTime done_b = -1.0;
  rig.links[0]->start_transfer(1, 500, XferDir::kIn, nullptr);
  rig.links[0]->start_transfer(2, 500, XferDir::kIn, nullptr);
  rig.links[1]->start_transfer(3, 600, XferDir::kIn,
                               [&] { done_b = sim.now(); });
  sim.run();
  // Card 0 finishes both at t=1 (500 MiB at 500 MiB/s). Card 1 moves
  // 600 MiB/s * 1 s = 600 MiB in that window → done exactly at 1.0 too.
  EXPECT_DOUBLE_EQ(done_b, 1.0);
}

TEST(PcieSwitch, FinishOnOneCardSpeedsUpTheOther) {
  // Uplink-bound start; when the small transfer drains, the survivor's
  // rate must be re-evaluated node-wide.
  Simulator sim;
  Rig rig(sim, 2, 1000.0, 1000.0);
  SimTime done_small = -1.0, done_big = -1.0;
  rig.links[0]->start_transfer(1, 250, XferDir::kIn,
                               [&] { done_small = sim.now(); });
  rig.links[1]->start_transfer(2, 1000, XferDir::kIn,
                               [&] { done_big = sim.now(); });
  sim.run();
  // Small: 250 MiB at 500 → 0.5 s. Big: 250 MiB by then, remaining 750
  // at the full card rate (uplink now uncontended) → 0.5 + 0.75 = 1.25.
  EXPECT_DOUBLE_EQ(done_small, 0.5);
  EXPECT_DOUBLE_EQ(done_big, 1.25);
}

TEST(PcieSwitch, CancelOnOneCardSpeedsUpTheOther) {
  Simulator sim;
  Rig rig(sim, 2, 1000.0, 1000.0);
  SimTime done = -1.0;
  bool cancelled_done = false;
  rig.links[0]->start_transfer(1, 1000, XferDir::kIn,
                               [&] { done = sim.now(); });
  rig.links[1]->start_transfer(2, 1000, XferDir::kIn,
                               [&] { cancelled_done = true; });
  sim.schedule_at(1.0, [&] { rig.links[1]->cancel_job(2); });
  sim.run();
  // 500 MiB by t=1 at the uplink share, then 500 at full card rate.
  EXPECT_DOUBLE_EQ(done, 1.5);
  EXPECT_FALSE(cancelled_done);
  EXPECT_EQ(rig.sw.stats().cancelled, 1u);
  EXPECT_EQ(rig.sw.stats().transfers, 1u);
}

TEST(PcieSwitch, LateJoinerOnOtherCardDilatesInFlight) {
  Simulator sim;
  Rig rig(sim, 2, 1000.0, 1000.0);
  SimTime done1 = -1.0, done2 = -1.0;
  rig.links[0]->start_transfer(1, 1000, XferDir::kIn,
                               [&] { done1 = sim.now(); });
  sim.schedule_at(0.5, [&] {
    rig.links[1]->start_transfer(2, 500, XferDir::kIn,
                                 [&] { done2 = sim.now(); });
  });
  sim.run();
  // Job 1: 500 MiB alone, then 500 at the 500 MiB/s uplink share → 1.5.
  // Job 2: 500 MiB at 500 MiB/s from 0.5 → also 1.5.
  EXPECT_DOUBLE_EQ(done1, 1.5);
  EXPECT_DOUBLE_EQ(done2, 1.5);
}

TEST(PcieSwitch, BusyFractionIntegratesNodeOccupancy) {
  Simulator sim;
  Rig rig(sim, 2, 1000.0, 1e9);
  rig.links[0]->start_transfer(1, 1000, XferDir::kIn, nullptr);
  sim.run();  // busy [0, 1]
  sim.schedule_at(3.0, [&] {
    rig.links[1]->start_transfer(2, 1000, XferDir::kIn, nullptr);
  });
  sim.run();  // idle [1, 3], busy [3, 4]
  EXPECT_DOUBLE_EQ(rig.sw.busy_fraction(4.0), 0.5);
}

TEST(PcieSwitch, TelemetryRecordsBytesDepthAndEvents) {
  Simulator sim;
  obs::Recorder rec;
  Rig rig(sim, 2, 1000.0, 1000.0);
  rig.sw.attach_telemetry(rec, "phi.node0.pcie_switch");
  rig.links[0]->start_transfer(1, 1000, XferDir::kIn, nullptr);
  rig.links[1]->start_transfer(2, 600, XferDir::kOut, nullptr);
  sim.run();

  const auto snap = obs::take_snapshot(rec, sim.now());
  EXPECT_EQ(snap.metrics.counters.at("phi.node0.pcie_switch.bytes"), 1600u);
  EXPECT_GT(snap.metrics.gauges.at("phi.node0.pcie_switch.busy_frac.integral"),
            0.0);
  EXPECT_GT(
      snap.metrics.gauges.at("phi.node0.pcie_switch.queue_depth.mean"), 0.0);
  ASSERT_EQ(rec.events().of_type("pcie_switch_xfer_begin").size(), 2u);
  ASSERT_EQ(rec.events().of_type("pcie_switch_xfer_end").size(), 2u);
  const auto begin = rec.events().of_type("pcie_switch_xfer_begin")[0];
  EXPECT_EQ(begin.fields[0].first, "switch");
  EXPECT_EQ(begin.fields[0].second, "phi.node0.pcie_switch");
  EXPECT_EQ(begin.fields[2].second, "in");
}

TEST(PcieSwitch, ManyTransferStressCompletesAllWithDriftTolerance) {
  // Regression for the finish() drift check: hundreds of staggered,
  // cross-card transfers force thousands of settle/reconcile rounds
  // whose float residue must stay inside the relative tolerance rather
  // than being clamped away (or tripping the old absolute 1e-6 check).
  Simulator sim;
  Rig rig(sim, 4, 6144.0, 2.0 * 6144.0);
  int completed = 0;
  constexpr int kPerCard = 100;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < kPerCard; ++i) {
      const SimTime at = 0.0009 * i + 0.0002 * c;
      sim.schedule_at(at, [&rig, &completed, c, i] {
        // Deliberately awkward sizes so nothing divides evenly.
        const MiB mib = 7 + 13 * i + 3 * c;
        rig.links[static_cast<std::size_t>(c)]->start_transfer(
            static_cast<JobId>(c * kPerCard + i + 1), mib, XferDir::kIn,
            [&completed] { ++completed; });
      });
    }
  }
  sim.run();
  EXPECT_EQ(completed, 4 * kPerCard);
  EXPECT_EQ(rig.sw.stats().transfers, static_cast<std::uint64_t>(4 * kPerCard));
  EXPECT_EQ(rig.sw.active_transfers(), 0u);
}

}  // namespace
}  // namespace phisched::phi
