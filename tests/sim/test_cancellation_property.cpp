// Property test of the event core under randomized schedule/cancel
// interleavings: exactly the non-cancelled events fire, in (time, seq)
// order, and the clock never goes backwards.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace phisched {
namespace {

class CancellationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CancellationProperty, ExactlySurvivorsFireInOrder) {
  Rng rng(GetParam());
  Simulator sim;

  struct Planned {
    int id = 0;
    SimTime time = 0.0;
    EventHandle handle;
    bool cancelled = false;
    bool fired = false;
  };
  std::vector<Planned> planned(300);
  std::vector<int> fire_order;

  for (int i = 0; i < static_cast<int>(planned.size()); ++i) {
    planned[static_cast<std::size_t>(i)].id = i;
    planned[static_cast<std::size_t>(i)].time =
        static_cast<double>(rng.uniform_int(0, 40));  // many ties
    planned[static_cast<std::size_t>(i)].handle = sim.schedule_at(
        planned[static_cast<std::size_t>(i)].time, [&planned, &fire_order, i] {
          planned[static_cast<std::size_t>(i)].fired = true;
          fire_order.push_back(i);
        });
  }

  // Cancel ~1/3 up front; some events also cancel later events when they
  // fire (mid-run cancellation).
  for (auto& p : planned) {
    if (rng.bernoulli(0.33)) {
      p.handle.cancel();
      p.cancelled = true;
    }
  }
  // A couple of in-flight cancellers targeting strictly later times.
  for (int k = 0; k < 10; ++k) {
    const std::size_t victim = rng.index(planned.size());
    if (planned[victim].cancelled || planned[victim].time < 20.0) continue;
    planned[victim].cancelled = true;
    sim.schedule_at(10.0, [&planned, victim] {
      planned[victim].handle.cancel();
    });
  }

  sim.run();

  // 1. Exactly the survivors fired.
  for (const auto& p : planned) {
    EXPECT_EQ(p.fired, !p.cancelled) << "event " << p.id;
  }
  // 2. Firing order is non-decreasing in time, FIFO within ties.
  for (std::size_t k = 1; k < fire_order.size(); ++k) {
    const auto& prev = planned[static_cast<std::size_t>(fire_order[k - 1])];
    const auto& curr = planned[static_cast<std::size_t>(fire_order[k])];
    EXPECT_LE(prev.time, curr.time);
    if (prev.time == curr.time) {
      EXPECT_LT(prev.id, curr.id);
    }
  }
  EXPECT_TRUE(sim.idle());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CancellationProperty,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace phisched
