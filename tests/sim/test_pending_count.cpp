// O(1) pending_events(): the live counter must agree with the queue
// through every schedule / fire / cancel interleaving, including the
// lazy-cancellation corners (cancel twice, cancel after fire, cancel
// from inside the event's own callback).
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace phisched {
namespace {

TEST(PendingCount, TracksScheduleAndFire) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(PendingCount, CancelDecrementsImmediately) {
  Simulator sim;
  EventHandle h1 = sim.schedule_at(1.0, [] {});
  EventHandle h2 = sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h1.cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  // Cancelling again must not double-decrement.
  h1.cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  h2.cancel();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.idle());
  // The cancelled records still sit in the heap until skimmed; running
  // must process nothing.
  EXPECT_EQ(sim.run(), 0u);
}

TEST(PendingCount, CancelAfterFireIsANoOp) {
  Simulator sim;
  EventHandle h = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  h.cancel();  // already fired; handle's record is gone
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PendingCount, CancelFromOwnCallbackDoesNotUnderflow) {
  Simulator sim;
  EventHandle h;
  h = sim.schedule_at(1.0, [&h, &sim] {
    // The event is firing right now: its live count was already
    // consumed by the pop, so this cancel must change nothing.
    h.cancel();
    EXPECT_EQ(sim.pending_events(), 0u);
  });
  sim.schedule_at(0.5, [] {}).cancel();
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(PendingCount, CancelOfFutureEventFromCallback) {
  Simulator sim;
  int fired = 0;
  EventHandle later = sim.schedule_at(5.0, [&fired] { ++fired; });
  sim.schedule_at(1.0, [&later, &sim] {
    EXPECT_EQ(sim.pending_events(), 1u);
    later.cancel();
    EXPECT_EQ(sim.pending_events(), 0u);
  });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(PendingCount, AgreesWithPendingHandles) {
  Simulator sim;
  std::vector<EventHandle> handles;
  handles.reserve(100);
  for (int i = 0; i < 100; ++i) {
    handles.push_back(
        sim.schedule_at(static_cast<SimTime>(i % 10), [] {}));
  }
  for (int i = 0; i < 100; i += 3) handles[static_cast<std::size_t>(i)].cancel();
  std::size_t live = 0;
  for (const EventHandle& h : handles) {
    if (h.pending()) ++live;
  }
  EXPECT_EQ(sim.pending_events(), live);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace phisched
