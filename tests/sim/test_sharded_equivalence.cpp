// Sharded-engine equivalence battery: for every StackConfig, seed and
// shard count, a cluster run on sim::ShardedSimulator must be
// bit-identical to the sequential engine — every ExperimentResult field
// compared with exact EXPECT_EQ on doubles, and telemetry (metrics +
// event log) with operator==. This is the contract that makes
// --parallel-shards safe to use anywhere: the knob trades nothing but
// wall-clock. Mirrors the pattern of tests/cluster/test_harness.cpp.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <tuple>

#include "cluster/harness.hpp"
#include "obs/recorder.hpp"
#include "sim/sharded.hpp"
#include "workload/jobset.hpp"

namespace phisched::cluster {
namespace {

[[nodiscard]] ExperimentConfig small_cluster(StackConfig stack,
                                             std::uint64_t seed) {
  ExperimentConfig config;
  config.node_count = 4;  // spread across shard counts 2 and 4
  config.stack = stack;
  config.seed = seed;
  config.telemetry = true;
  config.sample_interval = 10.0;
  return config;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.avg_core_utilization, b.avg_core_utilization);
  EXPECT_EQ(a.per_device_utilization, b.per_device_utilization);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_failed, b.jobs_failed);
  EXPECT_EQ(a.job_retries, b.job_retries);
  EXPECT_EQ(a.device_energy_mj, b.device_energy_mj);
  EXPECT_EQ(a.negotiation_cycles, b.negotiation_cycles);
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.offloads_started, b.offloads_started);
  EXPECT_EQ(a.offloads_queued, b.offloads_queued);
  EXPECT_EQ(a.oom_kills, b.oom_kills);
  EXPECT_EQ(a.container_kills, b.container_kills);
  EXPECT_EQ(a.addon_pins, b.addon_pins);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.mean_turnaround, b.mean_turnaround);
  EXPECT_EQ(a.turnaround.count(), b.turnaround.count());
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.wait_time.count(), b.wait_time.count());
  EXPECT_EQ(a.wait_time.mean(), b.wait_time.mean());
  EXPECT_EQ(a.utilization_series, b.utilization_series);
  ASSERT_EQ(a.telemetry != nullptr, b.telemetry != nullptr);
  if (a.telemetry != nullptr) {
    EXPECT_TRUE(*a.telemetry == *b.telemetry)
        << "telemetry snapshots diverged";
  }
}

/// Shard counts the battery sweeps: the fixed {1, 2, 4, 8} ladder plus
/// whatever this machine's hardware concurrency is.
[[nodiscard]] std::set<std::size_t> shard_ladder() {
  std::set<std::size_t> counts{1, 2, 4, 8};
  counts.insert(std::max(1u, std::thread::hardware_concurrency()));
  return counts;
}

using StackSeed = std::tuple<StackConfig, std::uint64_t>;

[[nodiscard]] std::string stack_seed_name(
    const ::testing::TestParamInfo<StackSeed>& param) {
  std::string name;
  switch (std::get<0>(param.param)) {
    case StackConfig::kMC: name = "MC"; break;
    case StackConfig::kMCC: name = "MCC"; break;
    case StackConfig::kMCCK: name = "MCCK"; break;
    case StackConfig::kMCCFirstFit: name = "MCCFirstFit"; break;
    case StackConfig::kMCCBestFit: name = "MCCBestFit"; break;
    case StackConfig::kMCCOracle: name = "MCCOracle"; break;
  }
  return name + "_seed" + std::to_string(std::get<1>(param.param));
}

class ShardedEquivalence : public ::testing::TestWithParam<StackSeed> {};

TEST_P(ShardedEquivalence, EveryShardCountMatchesSequentialBitIdentically) {
  const auto [stack, seed] = GetParam();
  ExperimentConfig config = small_cluster(stack, seed);
  const auto jobs = workload::make_real_jobset(30, Rng(seed).child("jobs"));

  const ExperimentResult sequential = run_experiment(config, jobs);

  for (const std::size_t shards : shard_ladder()) {
    SCOPED_TRACE("parallel_shards=" + std::to_string(shards));
    config.parallel_shards = shards;
    expect_identical(sequential, run_experiment(config, jobs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStacksThreeSeeds, ShardedEquivalence,
    ::testing::Combine(
        ::testing::Values(StackConfig::kMC, StackConfig::kMCC,
                          StackConfig::kMCCK, StackConfig::kMCCFirstFit,
                          StackConfig::kMCCBestFit, StackConfig::kMCCOracle),
        ::testing::Values(11u, 42u, 1234u)),
    stack_seed_name);

TEST(ShardedEngine, HarnessSelectsShardedEngineAndPartitionsNodes) {
  ExperimentConfig config = small_cluster(StackConfig::kMCCK, 42);
  config.parallel_shards = 4;
  Harness harness(config);
  auto* engine = dynamic_cast<ShardedSimulator*>(&harness.simulator());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->shard_count(), 4u);

  config.parallel_shards = 1;
  Harness sequential(config);
  EXPECT_EQ(dynamic_cast<ShardedSimulator*>(&sequential.simulator()), nullptr);
}

TEST(ShardedEngine, PcieContentionRunsAreBitIdentical) {
  // The per-device PCIe link model adds dense node-local event chains
  // (transfer completions, fair-share reshuffles) — exactly the traffic
  // that runs inside shard windows.
  ExperimentConfig config = small_cluster(StackConfig::kMCCK, 21);
  config.pcie.contention = true;
  config.pcie.latency_s = 1e-4;
  const auto jobs = workload::make_real_jobset(30, Rng(21).child("jobs"));

  const ExperimentResult sequential = run_experiment(config, jobs);
  for (const std::size_t shards : shard_ladder()) {
    SCOPED_TRACE("parallel_shards=" + std::to_string(shards));
    config.parallel_shards = shards;
    expect_identical(sequential, run_experiment(config, jobs));
  }
}

TEST(ShardedEngine, PcieSwitchRunsAreBitIdentical) {
  // Hierarchical contention: the host-side switch reconciles all of a
  // node's card links — a shard-internal synchronization point that must
  // survive the window/merge cycle untouched.
  ExperimentConfig config = small_cluster(StackConfig::kMCCK, 23);
  config.node_hw.phi_devices = 2;
  config.pcie.contention = true;
  config.pcie.latency_s = 1e-4;
  config.pcie_switch.enabled = true;
  config.pcie_switch.bandwidth_mib_s = config.pcie.bandwidth_mib_s * 1.5;
  const auto jobs = workload::make_real_jobset(30, Rng(23).child("jobs"));

  const ExperimentResult sequential = run_experiment(config, jobs);
  for (const std::size_t shards : shard_ladder()) {
    SCOPED_TRACE("parallel_shards=" + std::to_string(shards));
    config.parallel_shards = shards;
    expect_identical(sequential, run_experiment(config, jobs));
  }
}

TEST(ShardedEngine, DynamicArrivalsAreBitIdentical) {
  // Open-loop arrivals are global-lane events interleaved with node work;
  // the windows must clip at each arrival exactly.
  ExperimentConfig config = small_cluster(StackConfig::kMCCK, 7);
  auto jobs = workload::make_real_jobset(25, Rng(7).child("jobs"));
  Rng arrivals = Rng(7).child("arrivals");
  SimTime t = 0.0;
  for (auto& job : jobs) {
    t += arrivals.exponential(1.0);
    job.submit_time = t;
  }

  const ExperimentResult sequential = run_experiment(config, jobs);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("parallel_shards=" + std::to_string(shards));
    config.parallel_shards = shards;
    expect_identical(sequential, run_experiment(config, jobs));
  }
}

TEST(ShardedEngine, MidRunSnapshotsAtBarriersDoNotPerturb) {
  // Harness::snapshot() under the sharded engine: every driving call
  // returns at a merged barrier, so a snapshot observes a state the
  // sequential engine also passes through — and must not perturb the
  // remainder of the run (the satellite fix this PR pins).
  ExperimentConfig config = small_cluster(StackConfig::kMCCK, 31);
  const auto jobs = workload::make_real_jobset(30, Rng(31).child("jobs"));

  const ExperimentResult sequential = run_experiment(config, jobs);

  config.parallel_shards = 4;
  Harness harness(config);
  harness.submit(jobs);
  std::size_t slices = 0;
  while (!harness.complete()) {
    harness.run_for(50.0);
    const ExperimentResult mid = harness.snapshot();
    EXPECT_LE(mid.jobs_completed + mid.jobs_failed, jobs.size());
    ASSERT_LT(++slices, 10000u) << "harness failed to make progress";
  }
  expect_identical(sequential, harness.run_to_completion());
}

TEST(ShardedEngine, MidRunSnapshotMatchesSequentialSnapshotAtSameTime) {
  // Stronger than non-perturbation: the snapshot CONTENT at a barrier
  // time must equal a sequential harness's snapshot at that same time.
  ExperimentConfig config = small_cluster(StackConfig::kMCC, 17);
  const auto jobs = workload::make_real_jobset(25, Rng(17).child("jobs"));

  Harness sequential(config);
  sequential.submit(jobs);
  config.parallel_shards = 4;
  Harness sharded(config);
  sharded.submit(jobs);

  for (SimTime t = 100.0; t <= 400.0; t += 100.0) {
    sequential.run_until(t);
    sharded.run_until(t);
    SCOPED_TRACE("t=" + std::to_string(t));
    expect_identical(sequential.snapshot(), sharded.snapshot());
  }
  expect_identical(sequential.run_to_completion(),
                   sharded.run_to_completion());
}

TEST(ShardedEngine, StepDrivenShardedRunIsBitIdentical) {
  // step() on the sharded engine executes one event sequentially; a
  // whole run driven that way — and mixed step()/run_until() driving —
  // still matches the one-shot sequential result.
  ExperimentConfig config = small_cluster(StackConfig::kMCCK, 42);
  const auto jobs = workload::make_real_jobset(20, Rng(42).child("jobs"));

  const ExperimentResult sequential = run_experiment(config, jobs);

  config.parallel_shards = 4;
  Harness stepped(config);
  stepped.submit(jobs);
  // Alternate: a burst of single steps, then a parallel slice.
  while (!stepped.complete()) {
    for (int i = 0; i < 25 && stepped.step(); ++i) {
    }
    if (!stepped.complete()) stepped.run_for(40.0);
  }
  expect_identical(sequential, stepped.run_to_completion());
}

TEST(ShardedEngine, JsonExportsAreByteIdentical) {
  // Beyond operator==: the serialized telemetry (metric and sim-time
  // ordered event exports) must be byte-for-byte the same, which is what
  // golden-file workflows diff.
  ExperimentConfig config = small_cluster(StackConfig::kMCCK, 5);
  config.max_retries = 1;  // exercise kill/requeue events in the log
  const auto jobs = workload::make_real_jobset(30, Rng(5).child("jobs"));

  const ExperimentResult sequential = run_experiment(config, jobs);
  config.parallel_shards = 8;
  const ExperimentResult sharded = run_experiment(config, jobs);

  ASSERT_NE(sequential.telemetry, nullptr);
  ASSERT_NE(sharded.telemetry, nullptr);
  EXPECT_EQ(obs::snapshot_json(*sequential.telemetry),
            obs::snapshot_json(*sharded.telemetry));
}

TEST(ShardedEngine, MoreShardsThanNodesIsValid) {
  // Degenerate partitions (empty shards) must be harmless.
  ExperimentConfig config = small_cluster(StackConfig::kMCC, 3);
  config.node_count = 2;
  const auto jobs = workload::make_real_jobset(15, Rng(3).child("jobs"));
  const ExperimentResult sequential = run_experiment(config, jobs);
  config.parallel_shards = 16;
  expect_identical(sequential, run_experiment(config, jobs));
}

}  // namespace
}  // namespace phisched::cluster
