// Property test for the sharded engine's barrier merge, at the raw
// sim:: level (no cluster stack). Randomized scenarios throw everything
// the merge's total order must survive at it: events tied at the same
// time across shards and the global lane, deep child chains (the n-th
// schedule call of an executing event), zero-delay children, explicit
// affinities, cancellations via EventHandle::cancel() fired from worker
// threads, post_global() messages that schedule further events from the
// merge context, and deferred obs::EventLog emissions. For every
// scenario and shard count, the observable execution order — recorded
// through post_global, which the merge replays in its deterministic
// order — and the event log must equal the sequential Simulator's.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/events.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace phisched {
namespace {

// Delay grid with duplicates so sibling and cross-shard ties are common.
constexpr double kDelays[] = {0.0, 0.5, 0.5, 1.0, 1.0, 1.5, 2.5};
constexpr int kMaxDepth = 3;

[[nodiscard]] std::string format_time(SimTime t) {
  std::ostringstream out;
  out << t;
  return out.str();
}

/// One randomized scenario bound to an engine. Behaviour is a pure
/// function of (scenario seed, event label), so running the same seed on
/// the sequential and sharded engines replays the identical event tree.
struct Scenario {
  explicit Scenario(Simulator& s, std::uint64_t scenario_seed)
      : sim(s), seed(scenario_seed) {}

  Simulator& sim;
  std::uint64_t seed;
  obs::EventLog log;
  std::vector<std::string> order;

  [[nodiscard]] Simulator::Callback fn(std::string label, int depth) {
    return [this, label = std::move(label), depth] { fire(label, depth); };
  }

  void record(const std::string& label) {
    const SimTime t = sim.now();
    // post_global is the order oracle: the sharded engine replays these
    // messages in exactly the order the sequential engine runs them.
    sim.post_global(
        [this, label, t] { order.push_back(label + "@" + format_time(t)); });
  }

  void fire(const std::string& label, int depth) {
    Rng r = Rng(seed).child(label);
    record(label);
    log.emit(sim.now(), "fire", {{"label", label}});
    if (depth >= kMaxDepth) return;

    const int kids = static_cast<int>(r.uniform_int(0, 3));
    for (int i = 0; i < kids; ++i) {
      const double delay = kDelays[r.index(std::size(kDelays))];
      sim.schedule_in(delay, fn(label + "." + std::to_string(i), depth + 1));
    }
    if (r.bernoulli(0.35)) {
      // Victim/killer pair in this event's own lane: whether the victim
      // dies is decided purely by the (time, key) order, and the cancel
      // itself runs on whatever worker thread executes the killer.
      const double dv = kDelays[r.index(std::size(kDelays))];
      const double dk = kDelays[r.index(std::size(kDelays))];
      EventHandle victim = sim.schedule_in(dv, fn(label + ".v", depth + 1));
      sim.schedule_in(dk, [this, victim, label]() mutable {
        victim.cancel();
        record(label + ".k");
      });
    }
    if (r.bernoulli(0.25)) {
      // A cross-shard message that schedules from the merge context: the
      // new event must slot in exactly where a sequential run puts it.
      const double dg = kDelays[r.index(std::size(kDelays))];
      sim.post_global([this, label, dg] {
        sim.schedule_in(dg, fn(label + ".g", kMaxDepth));
      });
    }
  }

  /// Schedules the scenario's root events (external context), some with
  /// explicit affinities, some cancelled again before anything runs.
  void seed_roots() {
    Rng r = Rng(seed).child("roots");
    std::vector<EventHandle> handles;
    const int roots = static_cast<int>(r.uniform_int(12, 20));
    for (int i = 0; i < roots; ++i) {
      const double t = kDelays[r.index(std::size(kDelays))] +
                       kDelays[r.index(std::size(kDelays))];
      const auto affinity =
          static_cast<Simulator::AffinityKey>(r.uniform_int(-1, 7));
      const std::string label = "r" + std::to_string(i);
      if (affinity == Simulator::kNoAffinity) {
        handles.push_back(sim.schedule_at(t, fn(label, 0)));
      } else {
        handles.push_back(sim.schedule_at(t, fn(label, 0), affinity));
      }
    }
    for (auto& handle : handles) {
      if (r.bernoulli(0.15)) handle.cancel();
    }
  }
};

/// EXPECT_EQ on string vectors, reporting the first mismatching index
/// with context (gtest truncates large vector dumps).
void expect_same_order(const std::vector<std::string>& expected,
                       const std::vector<std::string>& got) {
  const std::size_t n = std::min(expected.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] != got[i]) {
      std::ostringstream ctx;
      for (std::size_t j = i > 4 ? i - 4 : 0; j < std::min(n, i + 8); ++j) {
        ctx << "\n  [" << j << "] expected " << expected[j] << "  got "
            << got[j];
      }
      ADD_FAILURE() << "first divergence at index " << i << ":" << ctx.str();
      return;
    }
  }
  EXPECT_EQ(expected.size(), got.size())
      << "orders agree on common prefix of " << n;
}

struct Observed {
  std::vector<std::string> order;
  std::vector<obs::Event> events;
  std::uint64_t processed = 0;
  SimTime end_time = 0.0;
};

[[nodiscard]] Observed run_scenario(Simulator& sim, std::uint64_t seed,
                                    SimTime slice = 0.0) {
  Scenario scenario(sim, seed);
  scenario.seed_roots();
  if (slice > 0.0) {
    // Clip the run at arbitrary points: windows must cut exactly at t.
    SimTime t = 0.0;
    while (!sim.idle()) sim.run_until(t += slice);
  } else {
    sim.run();
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  return {std::move(scenario.order), scenario.log.events(),
          sim.events_processed(), sim.now()};
}

class ShardedMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedMergeProperty, MergedOrderEqualsSequentialOrder) {
  const std::uint64_t seed = GetParam();
  Simulator sequential;
  const Observed expected = run_scenario(sequential, seed);
  ASSERT_FALSE(expected.order.empty());

  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{8}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedSimulator sim(shards);
    const Observed got = run_scenario(sim, seed);
    expect_same_order(expected.order, got.order);
    EXPECT_EQ(expected.events, got.events);
    EXPECT_EQ(expected.processed, got.processed);
    EXPECT_EQ(expected.end_time, got.end_time);
  }
}

TEST_P(ShardedMergeProperty, SlicedDrivingEqualsSequentialOrder) {
  const std::uint64_t seed = GetParam();
  Simulator sequential;
  const Observed expected = run_scenario(sequential, seed);

  for (const double slice : {0.3, 0.7}) {
    SCOPED_TRACE("slice=" + std::to_string(slice));
    ShardedSimulator sim(4);
    const Observed got = run_scenario(sim, seed, slice);
    expect_same_order(expected.order, got.order);
    EXPECT_EQ(expected.events, got.events);
    EXPECT_EQ(expected.processed, got.processed);
  }
}

INSTANTIATE_TEST_SUITE_P(TwentyScenarios, ShardedMergeProperty,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ShardedMergeEdge, StepInterleavedWithRunMatchesSequential) {
  Simulator sequential;
  const Observed expected = run_scenario(sequential, 404);

  ShardedSimulator sim(4);
  Scenario scenario(sim, 404);
  scenario.seed_roots();
  // Alternate single-stepping with parallel windows.
  while (!sim.idle()) {
    for (int i = 0; i < 7 && sim.step(); ++i) {
    }
    if (!sim.idle()) sim.run_until(sim.now() + 0.9);
  }
  EXPECT_EQ(expected.order, scenario.order);
  EXPECT_EQ(expected.events, scenario.log.events());
}

TEST(ShardedMergeEdge, ZeroDelaySelfChainsTerminateAndMatch) {
  // A chain of zero-delay children tied at one instant, in every lane.
  auto run = [](Simulator& sim) {
    std::vector<std::string> order;
    std::vector<std::unique_ptr<std::function<void(int)>>> chains;
    for (int lane = -1; lane < 4; ++lane) {
      chains.push_back(std::make_unique<std::function<void(int)>>());
      std::function<void(int)>* chain = chains.back().get();
      *chain = [&sim, &order, chain, lane](int depth) {
        sim.post_global([&order, lane, depth] {
          order.push_back(std::to_string(lane) + ":" + std::to_string(depth));
        });
        if (depth < 5) {
          sim.schedule_in(0.0, [chain, depth] { (*chain)(depth + 1); });
        }
      };
      if (lane < 0) {
        sim.schedule_at(1.0, [chain] { (*chain)(0); });
      } else {
        sim.schedule_at(1.0, [chain] { (*chain)(0); }, lane);
      }
    }
    sim.run();
    return order;
  };
  Simulator sequential;
  ShardedSimulator sharded(4);
  EXPECT_EQ(run(sequential), run(sharded));
}

}  // namespace
}  // namespace phisched
