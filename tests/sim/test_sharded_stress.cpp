// Determinism stress battery for the sharded engine (runs under the
// sanitizer sweep, tsan included — see tools/run_sanitizers.sh). The
// bit-identical guarantee must hold not just once but under hostile
// thread-pool conditions: repeated runs race against background noise
// tasks that perturb worker wake-up order, chunk assignment and steal
// patterns. Ten repetitions of the same sharded experiment must export
// byte-identical telemetry JSON — and match the sequential engine.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "cluster/harness.hpp"
#include "common/threadpool.hpp"
#include "obs/recorder.hpp"
#include "workload/jobset.hpp"

namespace phisched::cluster {
namespace {

[[nodiscard]] ExperimentConfig stress_config(std::size_t shards) {
  ExperimentConfig config;
  config.node_count = 4;
  config.stack = StackConfig::kMCCK;
  config.seed = 97;
  config.telemetry = true;
  config.sample_interval = 10.0;
  config.pcie.contention = true;  // dense node-local chains inside windows
  config.pcie.latency_s = 1e-4;
  config.parallel_shards = shards;
  return config;
}

/// Churns the shared pool so the next parallel window meets workers in
/// an unpredictable state (mid-steal, freshly woken, cache-cold).
void agitate_pool() {
  std::atomic<std::uint64_t> sink{0};
  ThreadPool::shared().parallel_for(64, [&sink](std::size_t i) {
    std::uint64_t x = i + 1;
    for (int k = 0; k < 2000; ++k) x = x * 6364136223846793005ULL + 1;
    sink.fetch_add(x, std::memory_order_relaxed);
  });
}

TEST(ShardedStress, TenNoisyRepetitionsExportByteIdenticalJson) {
  const auto jobs = workload::make_real_jobset(25, Rng(97).child("jobs"));

  ExperimentConfig sequential = stress_config(0);
  const ExperimentResult baseline = run_experiment(sequential, jobs);
  ASSERT_NE(baseline.telemetry, nullptr);
  const std::string expected = obs::snapshot_json(*baseline.telemetry);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    for (int rep = 0; rep < 10; ++rep) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " rep=" + std::to_string(rep));
      agitate_pool();
      const ExperimentResult run =
          run_experiment(stress_config(shards), jobs);
      ASSERT_NE(run.telemetry, nullptr);
      // Byte equality of the full export (metrics + ordered event log)
      // is the strongest determinism oracle the repo has.
      EXPECT_EQ(expected, obs::snapshot_json(*run.telemetry));
      EXPECT_EQ(baseline.makespan, run.makespan);
      EXPECT_EQ(baseline.events_processed, run.events_processed);
      agitate_pool();
    }
  }
}

TEST(ShardedStress, InterleavedDrivingUnderNoiseStaysIdentical) {
  // Sliced driving with pool agitation between slices: every barrier
  // return must leave the engine in the same state regardless of how the
  // preceding window's shard tasks were scheduled.
  const auto jobs = workload::make_real_jobset(20, Rng(97).child("jobs"));
  ExperimentConfig sequential = stress_config(0);
  const ExperimentResult baseline = run_experiment(sequential, jobs);

  for (int rep = 0; rep < 3; ++rep) {
    SCOPED_TRACE("rep=" + std::to_string(rep));
    Harness harness(stress_config(4));
    harness.submit(jobs);
    while (!harness.complete()) {
      agitate_pool();
      harness.run_for(25.0);
    }
    const ExperimentResult run = harness.run_to_completion();
    ASSERT_NE(run.telemetry, nullptr);
    ASSERT_NE(baseline.telemetry, nullptr);
    EXPECT_EQ(obs::snapshot_json(*baseline.telemetry),
              obs::snapshot_json(*run.telemetry));
  }
}

}  // namespace
}  // namespace phisched::cluster
