#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace phisched {
namespace {

TEST(Simulator, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesOnlyToEventTimes) {
  Simulator sim;
  SimTime seen = -1.0;
  sim.schedule_in(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_in(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFiringIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  EXPECT_NO_THROW(h.cancel());
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_NO_THROW(h.cancel());
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  EventHandle a = sim.schedule_in(1.0, [] {});
  sim.schedule_in(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  a.cancel();
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1); });
  sim.schedule_at(2.0, [&] { fired.push_back(2); });
  sim.schedule_at(3.0, [&] { fired.push_back(3); });
  sim.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, NullCallbackThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_in(1.0, nullptr), std::invalid_argument);
}

TEST(Simulator, RunawayGuardThrows) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_in(0.0, forever); };
  sim.schedule_in(0.0, forever);
  EXPECT_THROW(sim.run(/*max_events=*/1000), InternalError);
}

TEST(Simulator, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  sim.schedule_at(3.0, [&] {
    sim.schedule_in(0.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 3.0); });
  });
  sim.run();
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, CancelDuringCallbackOfEarlierEvent) {
  Simulator sim;
  bool second_fired = false;
  EventHandle second;
  sim.schedule_at(1.0, [&] { second.cancel(); });
  second = sim.schedule_at(2.0, [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

}  // namespace
}  // namespace phisched
