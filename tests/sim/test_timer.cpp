#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace phisched {
namespace {

TEST(PeriodicTimer, FiresAtIntervalMultiples) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer timer(sim, 2.0, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{2.0, 4.0, 6.0}));
}

TEST(PeriodicTimer, CustomPhase) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer timer(
      sim, 2.0, [&] { fire_times.push_back(sim.now()); }, /*phase=*/0.5);
  sim.run_until(5.0);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{0.5, 2.5, 4.5}));
}

TEST(PeriodicTimer, StopCancelsFutureFirings) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(sim, 1.0, [&] { ++fired; });
  sim.run_until(2.5);
  timer.stop();
  EXPECT_FALSE(timer.running());
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTimer, CallbackMayStopTheTimer) {
  Simulator sim;
  int fired = 0;
  std::unique_ptr<PeriodicTimer> timer;
  timer = std::make_unique<PeriodicTimer>(sim, 1.0, [&] {
    if (++fired == 3) timer->stop();
  });
  sim.run_until(100.0);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(sim.idle());
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer timer(sim, 1.0, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(1.5);
  timer.stop();
  sim.run_until(5.0);
  timer.start();  // next firing at 6.0
  sim.run_until(6.5);
  timer.stop();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{1.0, 6.0}));
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer timer(sim, 1.0, [&] { ++fired; });
  }
  sim.run_until(5.0);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.idle());
}

TEST(PeriodicTimer, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, 0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTimer(sim, -1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTimer(sim, 1.0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace phisched
