#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace phisched {
namespace {

TEST(IntervalTrace, RecordAndQuery) {
  IntervalTrace trace;
  trace.record("J1", 0.0, 2.0, "offload-1");
  trace.record("J1", 3.0, 5.0, "offload-2");
  trace.record("J2", 1.0, 4.0, "offload-A");
  EXPECT_EQ(trace.lane("J1").size(), 2u);
  EXPECT_EQ(trace.lane("J2").size(), 1u);
  EXPECT_EQ(trace.lanes(), (std::vector<std::string>{"J1", "J2"}));
  EXPECT_DOUBLE_EQ(trace.horizon(), 5.0);
}

TEST(IntervalTrace, OpenCloseRoundTrip) {
  IntervalTrace trace;
  const std::size_t token = trace.open("lane", 1.0, "work");
  trace.close("lane", token, 4.0);
  const auto& iv = trace.lane("lane")[0];
  EXPECT_DOUBLE_EQ(iv.start, 1.0);
  EXPECT_DOUBLE_EQ(iv.end, 4.0);
  EXPECT_EQ(iv.label, "work");
}

TEST(IntervalTrace, DoubleCloseThrows) {
  IntervalTrace trace;
  const std::size_t token = trace.open("lane", 0.0, "x");
  trace.close("lane", token, 1.0);
  EXPECT_THROW(trace.close("lane", token, 2.0), std::invalid_argument);
}

TEST(IntervalTrace, CloseBeforeStartThrows) {
  IntervalTrace trace;
  const std::size_t token = trace.open("lane", 5.0, "x");
  EXPECT_THROW(trace.close("lane", token, 4.0), std::invalid_argument);
}

TEST(IntervalTrace, UnknownLaneIsEmpty) {
  IntervalTrace trace;
  EXPECT_TRUE(trace.lane("nope").empty());
}

TEST(IntervalTrace, AsciiRendersGlyphs) {
  IntervalTrace trace;
  trace.record("jobA", 0.0, 5.0, "offload", '#');
  trace.record("jobA", 5.0, 10.0, "host", '.');
  trace.record("jobB", 2.5, 7.5, "offload", '*');
  const std::string art = trace.ascii(20);
  EXPECT_NE(art.find("jobA"), std::string::npos);
  EXPECT_NE(art.find("jobB"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('*'), std::string::npos);
}

TEST(IntervalTrace, AsciiCoversProportionalSpan) {
  IntervalTrace trace;
  trace.record("L", 0.0, 5.0, "first", '#');
  trace.record("L", 5.0, 10.0, "idle-ignored", '.');
  const std::string art = trace.ascii(10);
  // First half of the 10-char row is '#', second half '.'.
  const auto bar = art.substr(art.find('|') + 1, 10);
  EXPECT_EQ(bar, "#####.....");
}

TEST(IntervalTrace, EmptyTraceHorizonZero) {
  IntervalTrace trace;
  EXPECT_DOUBLE_EQ(trace.horizon(), 0.0);
}

}  // namespace
}  // namespace phisched
