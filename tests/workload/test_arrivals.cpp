// Arrival-stream generators: spec grammar round-trips, every process is
// seed-deterministic and non-decreasing, and traces are validated loudly.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/arrivals.hpp"

namespace phisched::workload {
namespace {

std::vector<SimTime> take(ArrivalStream& stream, std::size_t n) {
  std::vector<SimTime> out;
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = stream.next();
    if (!t.has_value()) break;
    out.push_back(*t);
  }
  return out;
}

std::string write_trace(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << body;
  return path;
}

TEST(ArrivalSpec, ParsesPoissonAndRoundTrips) {
  const ArrivalSpec spec = ArrivalSpec::parse("poisson:rate=2.5");
  EXPECT_EQ(spec.kind, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(spec.rate, 2.5);
  EXPECT_EQ(ArrivalSpec::parse(spec.to_string()).rate, spec.rate);
}

TEST(ArrivalSpec, ParsesBurstyDiurnalTrace) {
  const ArrivalSpec bursty =
      ArrivalSpec::parse("bursty:rate_on=5,rate_off=0.2,mean_on=30,mean_off=120");
  EXPECT_EQ(bursty.kind, ArrivalKind::kBursty);
  EXPECT_DOUBLE_EQ(bursty.rate_on, 5.0);
  EXPECT_DOUBLE_EQ(bursty.mean_off_s, 120.0);

  const ArrivalSpec diurnal =
      ArrivalSpec::parse("diurnal:base=0.5,peak=3.0,period=3600");
  EXPECT_EQ(diurnal.kind, ArrivalKind::kDiurnal);
  EXPECT_DOUBLE_EQ(diurnal.peak, 3.0);

  const ArrivalSpec trace =
      ArrivalSpec::parse("trace:file=arrivals.txt,scale=0.5");
  EXPECT_EQ(trace.kind, ArrivalKind::kTrace);
  EXPECT_EQ(trace.trace_file, "arrivals.txt");
  EXPECT_DOUBLE_EQ(trace.trace_scale, 0.5);
}

TEST(ArrivalSpec, DefaultsApplyWhenKeysOmitted) {
  const ArrivalSpec spec = ArrivalSpec::parse("poisson");
  EXPECT_EQ(spec.kind, ArrivalKind::kPoisson);
  EXPECT_GT(spec.rate, 0.0);
}

TEST(ArrivalSpec, RejectsMalformedSpecsLoudly) {
  EXPECT_THROW(ArrivalSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("lognormal:rate=1"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("poisson:rate=-1"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("poisson:rate=abc"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("poisson:bogus=1"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("trace:scale=1"), std::invalid_argument)
      << "trace without file= must be rejected";
}

TEST(ArrivalSpec, AcceptsEverySpellingOfZero) {
  // The old prefix check ("0." / "0e") rejected 0.00, 0e0 and .0 even
  // though zero is a legal value for these keys.
  for (const char* zero : {"0", "0.0", "0.00", "0e0", ".0", "0.", "00"}) {
    const ArrivalSpec spec = ArrivalSpec::parse(
        std::string("diurnal:base=") + zero + ",peak=3.0,period=3600");
    EXPECT_DOUBLE_EQ(spec.base, 0.0) << zero;
  }
}

TEST(ArrivalSpec, RejectsNonFiniteValues) {
  EXPECT_THROW(ArrivalSpec::parse("poisson:rate=nan"), std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("poisson:rate=inf"), std::invalid_argument);
}

TEST(ArrivalSpec, RejectsDuplicateKeysNamingTheKey) {
  try {
    ArrivalSpec::parse("poisson:rate=1,rate=2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rate"), std::string::npos);
  }
  EXPECT_THROW(
      ArrivalSpec::parse("bursty:rate_on=5,rate_on=5,rate_off=0.2"),
      std::invalid_argument);
  EXPECT_THROW(ArrivalSpec::parse("trace:file=a.txt,file=b.txt"),
               std::invalid_argument);
}

TEST(ArrivalStreams, SeedDeterministicAndNonDecreasing) {
  for (const char* spec_text :
       {"poisson:rate=2.0",
        "bursty:rate_on=5,rate_off=0.2,mean_on=30,mean_off=120",
        "diurnal:base=0.5,peak=3.0,period=3600"}) {
    const ArrivalSpec spec = ArrivalSpec::parse(spec_text);
    auto a = make_arrival_stream(spec, Rng(99));
    auto b = make_arrival_stream(spec, Rng(99));
    const auto ta = take(*a, 500);
    const auto tb = take(*b, 500);
    EXPECT_EQ(ta, tb) << spec_text;  // bit-identical replay
    ASSERT_EQ(ta.size(), 500u) << spec_text;
    EXPECT_GE(ta.front(), 0.0);
    for (std::size_t i = 1; i < ta.size(); ++i) {
      ASSERT_LE(ta[i - 1], ta[i]) << spec_text << " at " << i;
    }

    auto c = make_arrival_stream(spec, Rng(100));
    EXPECT_NE(take(*c, 500), ta) << spec_text << ": seed must matter";
  }
}

TEST(ArrivalStreams, PoissonMeanInterArrivalMatchesRate) {
  const ArrivalSpec spec = ArrivalSpec::parse("poisson:rate=4.0");
  auto stream = make_arrival_stream(spec, Rng(1));
  const auto times = take(*stream, 20000);
  const double mean_gap = times.back() / static_cast<double>(times.size());
  EXPECT_NEAR(mean_gap, 0.25, 0.01);
}

TEST(ArrivalStreams, BurstyIsBurstierThanPoissonAtSameMeanRate) {
  // Dispersion check: squared coefficient of variation of inter-arrival
  // gaps is 1 for Poisson, > 1 for the on/off-modulated process.
  const auto gaps_cv2 = [](const std::vector<SimTime>& times) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < times.size(); ++i) {
      gaps.push_back(times[i] - times[i - 1]);
    }
    double mean = 0.0;
    for (const double g : gaps) mean += g;
    mean /= static_cast<double>(gaps.size());
    double var = 0.0;
    for (const double g : gaps) var += (g - mean) * (g - mean);
    var /= static_cast<double>(gaps.size());
    return var / (mean * mean);
  };
  const ArrivalSpec bursty =
      ArrivalSpec::parse("bursty:rate_on=10,rate_off=0.1,mean_on=20,mean_off=80");
  auto stream = make_arrival_stream(bursty, Rng(5));
  EXPECT_GT(gaps_cv2(take(*stream, 5000)), 2.0);
}

TEST(ArrivalStreams, DiurnalRateOscillatesWithThePeriod) {
  // base≈0 with a strong peak: arrivals must cluster around the middle
  // of each period (rate(t) peaks at period/2) and thin out at the ends.
  const ArrivalSpec spec =
      ArrivalSpec::parse("diurnal:base=0.05,peak=5.0,period=1000");
  auto stream = make_arrival_stream(spec, Rng(17));
  std::size_t mid = 0;
  std::size_t edge = 0;
  for (const SimTime t : take(*stream, 5000)) {
    const double phase = t - 1000.0 * std::floor(t / 1000.0);
    if (phase > 250.0 && phase < 750.0) {
      ++mid;
    } else {
      ++edge;
    }
  }
  EXPECT_GT(mid, 3 * edge);
}

TEST(ArrivalStreams, SyntheticStreamsNeverExhaust) {
  auto stream = make_arrival_stream(ArrivalSpec::parse("poisson:rate=1"),
                                    Rng(2));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(stream->next().has_value());
}

TEST(TraceStream, ReplaysFileWithCommentsAndScale) {
  const std::string path = write_trace(
      "arrivals_ok.txt", "# header comment\n0.5\n1.5\n1.5\n\n4.0 # inline\n");
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kTrace;
  spec.trace_file = path;
  spec.trace_scale = 2.0;
  auto stream = make_arrival_stream(spec, Rng(1));
  EXPECT_EQ(take(*stream, 10),
            (std::vector<SimTime>{1.0, 3.0, 3.0, 8.0}));
  EXPECT_FALSE(stream->next().has_value()) << "finite trace must exhaust";
}

TEST(TraceStream, RejectsMalformedTracesLoudly) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kTrace;

  spec.trace_file = write_trace("arrivals_decreasing.txt", "5.0\n3.0\n");
  EXPECT_THROW(make_arrival_stream(spec, Rng(1)), std::invalid_argument);

  spec.trace_file = write_trace("arrivals_negative.txt", "-1.0\n");
  EXPECT_THROW(make_arrival_stream(spec, Rng(1)), std::invalid_argument);

  spec.trace_file = write_trace("arrivals_junk.txt", "1.0\ntwo\n");
  EXPECT_THROW(make_arrival_stream(spec, Rng(1)), std::invalid_argument);

  spec.trace_file = ::testing::TempDir() + "does_not_exist.txt";
  EXPECT_THROW(make_arrival_stream(spec, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace phisched::workload
