#include "workload/estimator.hpp"

#include <gtest/gtest.h>

#include "common/quantize.hpp"
#include "workload/jobset.hpp"

namespace phisched::workload {
namespace {

JobSpec growing_job() {
  JobSpec job;
  job.id = 1;
  job.base_memory_mib = 16;
  job.profile = OffloadProfile({
      Segment::offload(2.0, 60, 400),
      Segment::host(1.0),
      Segment::offload(2.0, 120, 900),
      Segment::host(1.0),
      Segment::offload(2.0, 180, 2000),  // the late peak
  });
  return job;
}

TEST(Estimator, FullProfileEstimateIsTruthful) {
  const JobSpec est = estimate_from_full_profile(growing_job());
  EXPECT_TRUE(est.declaration_truthful());
  EXPECT_GE(est.mem_req_mib, est.actual_peak_memory());
  EXPECT_GE(est.threads_req, 180);
  EXPECT_EQ(est.mem_req_mib % kMemoryQuantumMiB, 0);
}

TEST(Estimator, MarginAddsHeadroom) {
  EstimateConfig tight;
  tight.memory_margin = 0.0;
  EstimateConfig loose;
  loose.memory_margin = 0.5;
  const JobSpec a = estimate_from_full_profile(growing_job(), tight);
  const JobSpec b = estimate_from_full_profile(growing_job(), loose);
  EXPECT_GT(b.mem_req_mib, a.mem_req_mib);
  // 0% margin still covers the observed peak exactly.
  EXPECT_GE(a.mem_req_mib, a.actual_peak_memory());
}

TEST(Estimator, ThreadMarginRoundsUp) {
  EstimateConfig config;
  config.thread_margin = 0.1;
  const JobSpec est = estimate_from_full_profile(growing_job(), config);
  EXPECT_EQ(est.threads_req, 198);  // ceil(180 * 1.1)
}

TEST(Estimator, PartialObservationCanUnderestimate) {
  EstimateConfig config;
  config.memory_margin = 0.0;
  const JobSpec est =
      estimate_from_partial_profile(growing_job(), /*observed=*/2, config);
  // Only saw 400 and 900 MiB offloads; the 2000 MiB one is a surprise.
  EXPECT_FALSE(est.declaration_truthful());
  EXPECT_LT(est.mem_req_mib, est.actual_peak_memory());
}

TEST(Estimator, PartialObservationOfWholeProfileIsTruthful) {
  const JobSpec est = estimate_from_partial_profile(growing_job(), 3);
  EXPECT_TRUE(est.declaration_truthful());
}

TEST(Estimator, GenerousMarginsRescuePartialObservation) {
  EstimateConfig config;
  config.memory_margin = 2.0;  // 3x the observed memory peak
  config.thread_margin = 0.5;  // 1.5x the observed 120 threads = 180
  const JobSpec est = estimate_from_partial_profile(growing_job(), 2, config);
  EXPECT_TRUE(est.declaration_truthful());
}

TEST(Estimator, EstimateAllPreservesSetSize) {
  const JobSet jobs = make_real_jobset(50, Rng(3));
  const JobSet estimated = estimate_all(jobs);
  ASSERT_EQ(estimated.size(), jobs.size());
  for (const JobSpec& job : estimated) {
    EXPECT_TRUE(job.declaration_truthful());
  }
}

TEST(Estimator, EstimatesAreTighterOrEqualToMargin) {
  // With a 15% margin, estimates never exceed 1.15x peak + quantum.
  const JobSet jobs = make_real_jobset(50, Rng(4));
  for (const JobSpec& job : estimate_all(jobs)) {
    const double bound =
        1.15 * static_cast<double>(job.actual_peak_memory()) + 50.0;
    EXPECT_LE(static_cast<double>(job.mem_req_mib), bound);
  }
}

TEST(Estimator, RejectsBadInput) {
  EXPECT_THROW((void)estimate_from_partial_profile(growing_job(), 0),
               std::invalid_argument);
  JobSpec no_offloads;
  no_offloads.profile = OffloadProfile({Segment::host(1.0)});
  EXPECT_THROW((void)estimate_from_partial_profile(no_offloads, 1),
               std::invalid_argument);
  EstimateConfig bad;
  bad.memory_margin = -0.1;
  EXPECT_THROW((void)estimate_from_full_profile(growing_job(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace phisched::workload
