#include "workload/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/jobset.hpp"

namespace phisched::workload {
namespace {

void expect_same(const JobSet& a, const JobSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].template_name, b[i].template_name);
    EXPECT_EQ(a[i].mem_req_mib, b[i].mem_req_mib);
    EXPECT_EQ(a[i].threads_req, b[i].threads_req);
    EXPECT_EQ(a[i].base_memory_mib, b[i].base_memory_mib);
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
    const auto& sa = a[i].profile.segments();
    const auto& sb = b[i].profile.segments();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t s = 0; s < sa.size(); ++s) {
      EXPECT_EQ(sa[s].kind, sb[s].kind);
      EXPECT_DOUBLE_EQ(sa[s].duration, sb[s].duration);
      EXPECT_EQ(sa[s].threads, sb[s].threads);
      EXPECT_EQ(sa[s].memory_mib, sb[s].memory_mib);
      EXPECT_EQ(sa[s].device_index, sb[s].device_index);
      EXPECT_EQ(sa[s].async, sb[s].async);
    }
  }
}

TEST(JobsetIo, RoundTripRealJobset) {
  const JobSet jobs = make_real_jobset(50, Rng(21).child("io"));
  expect_same(jobs, from_text(to_text(jobs)));
}

TEST(JobsetIo, RoundTripWithSubmitTimes) {
  JobSet jobs = make_real_jobset(10, Rng(22).child("io"));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].submit_time = 0.123456789 * static_cast<double>(i);
  }
  expect_same(jobs, from_text(to_text(jobs)));
}

TEST(JobsetIo, FileRoundTrip) {
  const JobSet jobs = make_real_jobset(8, Rng(23).child("io"));
  const std::string path = ::testing::TempDir() + "/phisched_jobset_test.txt";
  ASSERT_TRUE(save_jobset(jobs, path));
  expect_same(jobs, load_jobset(path));
  std::remove(path.c_str());
}

TEST(JobsetIo, HandWrittenInput) {
  const JobSet jobs = from_text(
      "# my workload\n"
      "job id=7 template=KM mem=1300 threads=60 base=16 submit=2.5\n"
      "  offload 4.25 60 1200\n"
      "  host 1.5\n"
      "  offload 3.75 60 1200\n"
      "end\n"
      "job id=8 mem=500 threads=120\n"
      "end\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, 7u);
  EXPECT_EQ(jobs[0].template_name, "KM");
  EXPECT_DOUBLE_EQ(jobs[0].submit_time, 2.5);
  EXPECT_EQ(jobs[0].profile.offload_count(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].profile.total_duration(), 9.5);
  EXPECT_EQ(jobs[1].id, 8u);
  EXPECT_TRUE(jobs[1].profile.empty());
  EXPECT_EQ(jobs[1].base_memory_mib, 16);  // default preserved
}

TEST(JobsetIo, EmptyInput) {
  EXPECT_TRUE(from_text("").empty());
  EXPECT_TRUE(from_text("# nothing here\n").empty());
}

TEST(JobsetIo, MalformedInputsThrow) {
  EXPECT_THROW((void)from_text("job id=1\njob id=2\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("host 1.0\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("job id=1\n"), std::invalid_argument);  // no end
  EXPECT_THROW((void)from_text("job id=1\n  offload 1.0\nend\n"),
               std::invalid_argument);  // missing offload fields
  EXPECT_THROW((void)from_text("job id=x\nend\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("job bogus=1\nend\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("frobnicate\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("end\n"), std::invalid_argument);
}

TEST(JobsetIo, ErrorsMentionLineNumbers) {
  try {
    (void)from_text("job id=1\nend\nwat\n");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(JobsetIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_jobset("/nonexistent/jobs.txt"),
               std::invalid_argument);
}

TEST(JobsetIo, GangAndAsyncRoundTrip) {
  JobSet jobs(1);
  jobs[0].id = 3;
  jobs[0].mem_req_mib = 800;
  jobs[0].threads_req = 240;
  jobs[0].devices_req = 2;
  jobs[0].profile = OffloadProfile({
      Segment::offload_async(2.0, 240, 500, 0),
      Segment::offload_async(2.5, 240, 500, 1),
      Segment::sync(),
      Segment::offload(1.0, 120, 300, 1),
  });
  const JobSet back = from_text(to_text(jobs));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].devices_req, 2);
  const auto& segs = back[0].profile.segments();
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_TRUE(segs[0].async);
  EXPECT_EQ(segs[1].device_index, 1);
  EXPECT_EQ(segs[2].kind, SegmentKind::kSync);
  EXPECT_FALSE(segs[3].async);
  EXPECT_EQ(segs[3].device_index, 1);
  expect_same(jobs, back);
}

TEST(JobsetIo, HandWrittenGangInput) {
  const JobSet jobs = from_text(
      "job id=1 mem=500 threads=240 devices=2\n"
      "  offload_async 3.0 240 400 0\n"
      "  offload_async 3.0 240 400 1\n"
      "  sync\n"
      "end\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].devices_req, 2);
  EXPECT_EQ(jobs[0].profile.offload_count(), 2u);
}

TEST(JobsetIo, DurationsSurviveExactly) {
  JobSet jobs(1);
  jobs[0].id = 0;
  jobs[0].mem_req_mib = 100;
  jobs[0].threads_req = 60;
  jobs[0].profile = OffloadProfile(
      {Segment::offload(1.0 / 3.0, 60, 50), Segment::host(0.1)});
  const JobSet back = from_text(to_text(jobs));
  EXPECT_DOUBLE_EQ(back[0].profile.segments()[0].duration, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(back[0].profile.segments()[1].duration, 0.1);
}

}  // namespace
}  // namespace phisched::workload
