#include "workload/jobset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace phisched::workload {
namespace {

TEST(JobSet, RealJobsetSizeAndIds) {
  const JobSet jobs = make_real_jobset(100, Rng(1));
  ASSERT_EQ(jobs.size(), 100u);
  std::set<JobId> ids;
  for (const auto& j : jobs) ids.insert(j.id);
  EXPECT_EQ(ids.size(), 100u);  // unique, dense ids
  EXPECT_EQ(*ids.begin(), 0u);
  EXPECT_EQ(*ids.rbegin(), 99u);
}

TEST(JobSet, RealJobsetUsesAllTemplates) {
  const JobSet jobs = make_real_jobset(500, Rng(2));
  std::set<std::string> names;
  for (const auto& j : jobs) names.insert(j.template_name);
  EXPECT_EQ(names.size(), 7u);
}

TEST(JobSet, RealJobsetDeterministic) {
  const JobSet a = make_real_jobset(50, Rng(42));
  const JobSet b = make_real_jobset(50, Rng(42));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].template_name, b[i].template_name);
    EXPECT_EQ(a[i].mem_req_mib, b[i].mem_req_mib);
    EXPECT_DOUBLE_EQ(a[i].profile.total_duration(),
                     b[i].profile.total_duration());
  }
}

TEST(JobSet, SyntheticJobsetRespectsDistribution) {
  const JobSet jobs =
      make_synthetic_jobset(Distribution::kHighSkew, 200, Rng(3));
  ASSERT_EQ(jobs.size(), 200u);
  for (const auto& j : jobs) {
    EXPECT_EQ(j.template_name, "SYN-highskew");
  }
}

TEST(JobSet, MemoryHistogramShapesDiffer) {
  const JobSet lo = make_synthetic_jobset(Distribution::kLowSkew, 400, Rng(4));
  const JobSet hi = make_synthetic_jobset(Distribution::kHighSkew, 400, Rng(4));
  const Histogram hlo = memory_histogram(lo, 10);
  const Histogram hhi = memory_histogram(hi, 10);
  // Low skew: mass in the lower bins; high skew: in the upper bins.
  double lo_low_mass = 0.0;
  double hi_low_mass = 0.0;
  for (std::size_t b = 0; b < 5; ++b) {
    lo_low_mass += hlo.fraction(b);
    hi_low_mass += hhi.fraction(b);
  }
  EXPECT_GT(lo_low_mass, 0.7);
  EXPECT_LT(hi_low_mass, 0.4);
}

TEST(JobSet, ThreadHistogramTotals) {
  const JobSet jobs = make_real_jobset(300, Rng(5));
  const Histogram h = thread_histogram(jobs);
  EXPECT_DOUBLE_EQ(h.total(), 300.0);
}

TEST(JobSet, TotalSerialDuration) {
  JobSet jobs;
  JobSpec a;
  a.profile = OffloadProfile({Segment::host(2.0), Segment::offload(3.0, 60, 100)});
  JobSpec b;
  b.profile = OffloadProfile({Segment::offload(5.0, 60, 100)});
  jobs.push_back(a);
  jobs.push_back(b);
  EXPECT_DOUBLE_EQ(total_serial_duration(jobs), 10.0);
}

TEST(JobSet, AllRealJobsFitOneCoprocessor) {
  // Section III: "Each job is guaranteed to fit within one Xeon Phi".
  const PhiHardware phi;
  const JobSet jobs = make_real_jobset(1000, Rng(6));
  for (const auto& j : jobs) {
    EXPECT_LE(j.mem_req_mib, phi.usable_memory_mib());
    EXPECT_LE(j.threads_req, phi.hw_threads());
  }
}

}  // namespace
}  // namespace phisched::workload
