#include "workload/profile.hpp"

#include <gtest/gtest.h>

namespace phisched::workload {
namespace {

TEST(Profile, SegmentFactories) {
  const Segment h = Segment::host(2.5);
  EXPECT_EQ(h.kind, SegmentKind::kHost);
  EXPECT_DOUBLE_EQ(h.duration, 2.5);

  const Segment o = Segment::offload(4.0, 120, 800);
  EXPECT_EQ(o.kind, SegmentKind::kOffload);
  EXPECT_EQ(o.threads, 120);
  EXPECT_EQ(o.memory_mib, 800);
}

TEST(Profile, SegmentValidation) {
  EXPECT_THROW((void)Segment::host(-1.0), std::invalid_argument);
  EXPECT_THROW((void)Segment::offload(1.0, 0, 10), std::invalid_argument);
  EXPECT_THROW((void)Segment::offload(1.0, 10, -1), std::invalid_argument);
  EXPECT_THROW((void)Segment::offload(-1.0, 10, 10), std::invalid_argument);
}

TEST(Profile, EmptyProfile) {
  OffloadProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.offload_count(), 0u);
  EXPECT_DOUBLE_EQ(p.total_duration(), 0.0);
  EXPECT_DOUBLE_EQ(p.duty_cycle(), 0.0);
  EXPECT_EQ(p.max_threads(), 0);
  EXPECT_EQ(p.max_offload_memory(), 0);
}

TEST(Profile, Aggregates) {
  OffloadProfile p({
      Segment::offload(4.0, 120, 500),
      Segment::host(2.0),
      Segment::offload(6.0, 240, 800),
      Segment::host(3.0),
      Segment::offload(5.0, 60, 300),
  });
  EXPECT_EQ(p.offload_count(), 3u);
  EXPECT_DOUBLE_EQ(p.total_duration(), 20.0);
  EXPECT_DOUBLE_EQ(p.offload_time(), 15.0);
  EXPECT_DOUBLE_EQ(p.duty_cycle(), 0.75);
  EXPECT_EQ(p.max_threads(), 240);
  EXPECT_EQ(p.max_offload_memory(), 800);
}

TEST(Profile, HostOnlyProfile) {
  OffloadProfile p({Segment::host(10.0)});
  EXPECT_DOUBLE_EQ(p.duty_cycle(), 0.0);
  EXPECT_EQ(p.max_threads(), 0);
}

}  // namespace
}  // namespace phisched::workload
