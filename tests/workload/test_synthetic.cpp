#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace phisched::workload {
namespace {

TEST(Synthetic, DistributionNames) {
  EXPECT_STREQ(distribution_name(Distribution::kUniform), "Uniform");
  EXPECT_STREQ(distribution_name(Distribution::kNormal), "Normal");
  EXPECT_STREQ(distribution_name(Distribution::kLowSkew), "Low Resource Skew");
  EXPECT_STREQ(distribution_name(Distribution::kHighSkew),
               "High Resource Skew");
  EXPECT_EQ(all_distributions().size(), 4u);
}

TEST(Synthetic, ResourceLevelsInUnitInterval) {
  SyntheticConfig config;
  Rng rng(3);
  for (Distribution d : all_distributions()) {
    config.distribution = d;
    for (int i = 0; i < 500; ++i) {
      const double r = sample_resource_level(config, rng);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(Synthetic, SkewMeansAreOrdered) {
  // Section V-B: skewed means sit one standard deviation from the normal
  // mean, low below and high above.
  SyntheticConfig config;
  Rng rng(5);
  auto mean_of = [&](Distribution d) {
    config.distribution = d;
    Summary s;
    for (int i = 0; i < 5000; ++i) s.add(sample_resource_level(config, rng));
    return s.mean();
  };
  const double low = mean_of(Distribution::kLowSkew);
  const double normal = mean_of(Distribution::kNormal);
  const double high = mean_of(Distribution::kHighSkew);
  EXPECT_LT(low, normal - 0.08);
  EXPECT_GT(high, normal + 0.08);
  EXPECT_NEAR(normal, 0.5, 0.02);
}

TEST(Synthetic, UniformCoversRange) {
  SyntheticConfig config;
  config.distribution = Distribution::kUniform;
  Rng rng(7);
  Summary s;
  for (int i = 0; i < 5000; ++i) s.add(sample_resource_level(config, rng));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_LT(s.min(), 0.02);
  EXPECT_GT(s.max(), 0.98);
}

TEST(Synthetic, JobsAreWellFormed) {
  SyntheticConfig config;
  Rng rng(9);
  for (Distribution d : all_distributions()) {
    config.distribution = d;
    for (JobId id = 0; id < 100; ++id) {
      const JobSpec job = sample_synthetic_job(config, id, rng);
      EXPECT_TRUE(job.declaration_truthful());
      EXPECT_GE(job.threads_req, config.thread_step);
      EXPECT_LE(job.threads_req, config.threads_max);
      EXPECT_EQ(job.threads_req % config.thread_step, 0);
      EXPECT_GE(job.mem_req_mib, config.memory_lo_mib);
      EXPECT_GT(job.profile.offload_count(), 0u);
    }
  }
}

TEST(Synthetic, MemoryAndThreadsAreCorrelated) {
  // The paper assumes jobs with low memory also have low threads.
  SyntheticConfig config;
  config.distribution = Distribution::kUniform;
  Rng rng(11);
  double sum_xy = 0.0;
  Summary mem;
  Summary thr;
  const int n = 2000;
  std::vector<JobSpec> jobs;
  for (JobId id = 0; id < n; ++id) {
    jobs.push_back(sample_synthetic_job(config, id, rng));
    mem.add(static_cast<double>(jobs.back().mem_req_mib));
    thr.add(static_cast<double>(jobs.back().threads_req));
  }
  for (const auto& j : jobs) {
    sum_xy += (static_cast<double>(j.mem_req_mib) - mem.mean()) *
              (static_cast<double>(j.threads_req) - thr.mean());
  }
  const double corr = sum_xy / ((n - 1) * mem.stddev() * thr.stddev());
  EXPECT_GT(corr, 0.9);
}

TEST(Synthetic, HighSkewDemandsMoreThanLowSkew) {
  Rng rng(13);
  SyntheticConfig lo;
  lo.distribution = Distribution::kLowSkew;
  SyntheticConfig hi;
  hi.distribution = Distribution::kHighSkew;
  Summary lo_mem;
  Summary hi_mem;
  for (JobId i = 0; i < 500; ++i) {
    lo_mem.add(static_cast<double>(sample_synthetic_job(lo, i, rng).mem_req_mib));
    hi_mem.add(static_cast<double>(sample_synthetic_job(hi, i, rng).mem_req_mib));
  }
  EXPECT_GT(hi_mem.mean(), lo_mem.mean() * 1.3);
}

TEST(Synthetic, RejectsBadConfig) {
  SyntheticConfig config;
  config.memory_hi_mib = config.memory_lo_mib;
  Rng rng(1);
  EXPECT_THROW((void)sample_synthetic_job(config, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace phisched::workload
