#include "workload/templates.hpp"

#include <gtest/gtest.h>

#include "common/quantize.hpp"

namespace phisched::workload {
namespace {

TEST(Templates, TableOneHasSevenEntries) {
  const auto& templates = table1_templates();
  ASSERT_EQ(templates.size(), 7u);
  std::vector<std::string> names;
  for (const auto& t : templates) names.push_back(t.name);
  EXPECT_EQ(names, (std::vector<std::string>{"KM", "MC", "MD", "SG", "BT",
                                             "SP", "LU"}));
}

TEST(Templates, ThreadCountsMatchTableOne) {
  EXPECT_EQ(table1_template("KM").threads, 60);
  EXPECT_EQ(table1_template("MC").threads, 180);
  EXPECT_EQ(table1_template("MD").threads, 180);
  EXPECT_EQ(table1_template("SG").threads, 60);
  EXPECT_EQ(table1_template("BT").threads, 240);
  EXPECT_EQ(table1_template("SP").threads, 180);
  EXPECT_EQ(table1_template("LU").threads, 180);
}

TEST(Templates, MemoryRangesMatchTableOne) {
  EXPECT_EQ(table1_template("KM").memory_lo_mib, 300);
  EXPECT_EQ(table1_template("KM").memory_hi_mib, 1250);
  EXPECT_EQ(table1_template("SG").memory_lo_mib, 500);
  EXPECT_EQ(table1_template("SG").memory_hi_mib, 3400);
  EXPECT_EQ(table1_template("SP").memory_hi_mib, 1850);
}

TEST(Templates, UnknownTemplateThrows) {
  EXPECT_THROW((void)table1_template("XX"), std::invalid_argument);
}

class TemplateSample : public ::testing::TestWithParam<const char*> {};

TEST_P(TemplateSample, InstancesAreWellFormed) {
  const WorkloadTemplate& tmpl = table1_template(GetParam());
  Rng rng(1234);
  for (JobId id = 0; id < 50; ++id) {
    const JobSpec job = tmpl.sample(id, rng);
    EXPECT_EQ(job.id, id);
    EXPECT_EQ(job.template_name, tmpl.name);
    EXPECT_EQ(job.threads_req, tmpl.threads);
    // Declaration covers the actual peak and is quantized.
    EXPECT_TRUE(job.declaration_truthful());
    EXPECT_EQ(job.mem_req_mib % kMemoryQuantumMiB, 0);
    EXPECT_GE(job.mem_req_mib, tmpl.memory_lo_mib);
    EXPECT_LE(job.mem_req_mib,
              quantize_up(tmpl.memory_hi_mib + job.base_memory_mib));
    // Profile structure: alternating offloads and host gaps.
    EXPECT_GE(job.profile.offload_count(),
              static_cast<std::size_t>(tmpl.offloads_lo));
    EXPECT_LE(job.profile.offload_count(),
              static_cast<std::size_t>(tmpl.offloads_hi));
    EXPECT_EQ(job.profile.max_threads(), tmpl.threads);
    EXPECT_GT(job.profile.total_duration(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TemplateSample,
                         ::testing::Values("KM", "MC", "MD", "SG", "BT", "SP",
                                           "LU"));

TEST(Templates, SamplingIsDeterministic) {
  const WorkloadTemplate& tmpl = table1_template("SP");
  Rng a(55);
  Rng b(55);
  const JobSpec ja = tmpl.sample(0, a);
  const JobSpec jb = tmpl.sample(0, b);
  EXPECT_EQ(ja.mem_req_mib, jb.mem_req_mib);
  EXPECT_EQ(ja.profile.segments().size(), jb.profile.segments().size());
  EXPECT_DOUBLE_EQ(ja.profile.total_duration(), jb.profile.total_duration());
}

TEST(Templates, DutyCycleNearOneHalf) {
  // Section III: exclusive-mode utilization ~50% requires the offload
  // duty cycle to sit near 0.5 for full-width spread jobs.
  Rng rng(77);
  double duty_sum = 0.0;
  int n = 0;
  for (const auto& tmpl : table1_templates()) {
    for (JobId id = 0; id < 30; ++id) {
      duty_sum += tmpl.sample(id, rng).profile.duty_cycle();
      ++n;
    }
  }
  const double mean_duty = duty_sum / n;
  EXPECT_GT(mean_duty, 0.40);
  EXPECT_LT(mean_duty, 0.60);
}

}  // namespace
}  // namespace phisched::workload
