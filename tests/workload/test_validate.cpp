#include "workload/validate.hpp"

#include <gtest/gtest.h>

#include "workload/jobset.hpp"

namespace phisched::workload {
namespace {

JobSpec good_job(JobId id) {
  JobSpec job;
  job.id = id;
  job.mem_req_mib = 1000;
  job.threads_req = 60;
  job.profile = OffloadProfile({Segment::offload(2.0, 60, 800)});
  return job;
}

TEST(Validate, CleanSetPasses) {
  const JobSet jobs = make_real_jobset(100, Rng(1));
  const ValidationReport report = validate_jobset(jobs);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.warnings.empty());
  EXPECT_EQ(report.to_string(), "ok\n");
}

TEST(Validate, DuplicateIds) {
  JobSet jobs{good_job(1), good_job(1)};
  const auto report = validate_jobset(jobs);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].problem.find("duplicate"), std::string::npos);
}

TEST(Validate, OversizedMemoryAndThreads) {
  JobSpec big = good_job(1);
  big.mem_req_mib = 100000;
  big.threads_req = 500;
  const auto report = validate_jobset({big});
  EXPECT_EQ(report.errors.size(), 2u);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, NonPositiveDeclarations) {
  JobSpec bad = good_job(1);
  bad.mem_req_mib = 0;
  bad.threads_req = 0;
  const auto report = validate_jobset({bad});
  EXPECT_EQ(report.errors.size(), 2u);
}

TEST(Validate, NegativeSubmitTime) {
  JobSpec bad = good_job(1);
  bad.submit_time = -1.0;
  EXPECT_FALSE(validate_jobset({bad}).ok());
}

TEST(Validate, UntruthfulDeclarationWarns) {
  JobSpec liar = good_job(1);
  liar.mem_req_mib = 100;  // actual peak is 816
  const auto report = validate_jobset({liar});
  EXPECT_TRUE(report.ok());  // warning, not error
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].problem.find("COSMIC will kill"),
            std::string::npos);
}

TEST(Validate, EmptyProfileWarns) {
  JobSpec empty = good_job(1);
  empty.profile = OffloadProfile{};
  const auto report = validate_jobset({empty});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.warnings.size(), 1u);
}

TEST(Validate, CustomHardwareShrinksTheEnvelope) {
  PhiHardware small;
  small.memory_mib = 900;
  small.os_reserved_mib = 24;  // usable 876 < the 1000 MiB declaration
  const auto report = validate_jobset({good_job(1)}, small);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, ExactFitIsAccepted) {
  PhiHardware hw;
  JobSpec job = good_job(1);
  job.mem_req_mib = hw.usable_memory_mib();
  job.threads_req = hw.hw_threads();
  job.profile = OffloadProfile({Segment::offload(1.0, 240, 100)});
  EXPECT_TRUE(validate_jobset({job}, hw).ok());
}

}  // namespace
}  // namespace phisched::workload
