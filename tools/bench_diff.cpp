// bench_diff: compare two BENCH_*.json reports (bench_json.cpp --json
// output) metric by metric and fail loudly on regressions.
//
//   bench_diff BASELINE.json CANDIDATE.json [--threshold 0.02]
//              [--abs-threshold 1e-6] [--all]
//
// Per-metric means are taken across the seeds each file contains; seeds
// present in both files are also compared pairwise so a single bad seed
// cannot hide inside a stable mean. A metric "regresses" when it moves
// in its bad direction by more than the threshold (relative): makespan,
// turnaround, wait and energy regress upward; utilization regresses
// downward. When the baseline value is exactly 0 (e.g. wait time at low
// load) a relative delta is undefined — the table prints "n/a" and the
// verdict falls back to the absolute delta against --abs-threshold.
// Other metrics are informational only. Exit codes: 0 clean,
// 1 regression, 2 usage or parse failure.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/table.hpp"

namespace {

using phisched::AsciiTable;

// ---------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, numbers, bools, null).
// The repo's common/json.hpp is writer-only by design; bench reports are
// machine-written, so this reader can stay strict and tiny.
// ---------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage"), std::nullopt;
    return v;
  }

  /// First failure, for the caller's diagnostic: what went wrong and the
  /// byte offset it went wrong at.
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t error_pos() const { return error_pos_; }

 private:
  /// Records the first (deepest) failure; later callers up the recursion
  /// keep the original message. Always returns false so failure sites
  /// read `return fail(...)`.
  bool fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
      error_pos_ = pos_;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string_view(word).size();
    if (text_.compare(pos_, n, word) != 0) {
      return fail(std::string("expected \"") + word + "\"");
    }
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Bench metric names are ASCII; keep the code point literal.
          // Validated by hand — std::stoul would throw on bad digits and
          // silently accept garbage like "12x4" (it stops at 'x').
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (std::size_t i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            const int digit = h >= '0' && h <= '9'   ? h - '0'
                              : h >= 'a' && h <= 'f' ? h - 'a' + 10
                              : h >= 'A' && h <= 'F' ? h - 'A' + 10
                                                     : -1;
            if (digit < 0) return fail("bad hex digit in \\u escape");
            cp = cp * 16 + static_cast<unsigned>(digit);
          }
          pos_ += 4;
          if (cp > 0x7F) return fail("non-ASCII \\u escape");
          out.push_back(static_cast<char>(cp));
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("unexpected character");
    const std::string token = text_.substr(start, pos_ - start);
    // std::stod both throws on a fully bad token ("--") and silently
    // accepts a valid prefix ("12..5" → 12); require full consumption.
    std::size_t used = 0;
    try {
      out.number = std::stod(token, &used);
    } catch (...) {
      used = 0;
    }
    if (used != token.size()) {
      pos_ = start;
      return fail("malformed number \"" + token.substr(0, 16) + "\"");
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t error_pos_ = 0;
};

// ---------------------------------------------------------------------
// Report model
// ---------------------------------------------------------------------

struct BenchReport {
  std::string bench;
  /// seed -> metric -> value
  std::map<std::uint64_t, std::map<std::string, double>> runs;
};

std::optional<BenchReport> load_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonParser parser(buffer.str());
  auto doc = parser.parse();
  if (!doc) {
    std::fprintf(stderr, "bench_diff: parse error in %s at offset %zu: %s\n",
                 path.c_str(), parser.error_pos(), parser.error().c_str());
    return std::nullopt;
  }
  if (doc->kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "bench_diff: %s is not a JSON report object\n",
                 path.c_str());
    return std::nullopt;
  }
  BenchReport report;
  if (const JsonValue* name = doc->find("bench");
      name != nullptr && name->kind == JsonValue::Kind::kString) {
    report.bench = name->string;
  }
  const JsonValue* results = doc->find("results");
  if (results == nullptr || results->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "bench_diff: %s has no \"results\" array\n",
                 path.c_str());
    return std::nullopt;
  }
  for (const JsonValue& run : results->array) {
    const JsonValue* seed = run.find("seed");
    const JsonValue* metrics = run.find("metrics");
    if (seed == nullptr || seed->kind != JsonValue::Kind::kNumber ||
        metrics == nullptr || metrics->kind != JsonValue::Kind::kObject) {
      std::fprintf(stderr, "bench_diff: %s has a malformed results entry\n",
                   path.c_str());
      return std::nullopt;
    }
    auto& row = report.runs[static_cast<std::uint64_t>(seed->number)];
    for (const auto& [key, value] : metrics->object) {
      if (value.kind == JsonValue::Kind::kNumber) row[key] = value.number;
    }
  }
  return report;
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// +1: larger is worse (makespan, turnaround, wait, energy, latency).
/// -1: smaller is worse (utilization, throughput in MiB/s, parallel
///     speedup).
///  0: informational only.
int bad_direction(const std::string& metric) {
  const auto contains = [&metric](const char* needle) {
    return metric.find(needle) != std::string::npos;
  };
  if (contains("makespan") || contains("turnaround") || contains("wait") ||
      contains("energy") || contains("latency")) {
    return +1;
  }
  if (contains("util") || contains("mib_s") || contains("speedup")) return -1;
  return 0;
}

std::map<std::string, double> metric_means(const BenchReport& report) {
  std::map<std::string, double> sums;
  std::map<std::string, std::size_t> counts;
  for (const auto& [_, metrics] : report.runs) {
    for (const auto& [key, value] : metrics) {
      sums[key] += value;
      counts[key] += 1;
    }
  }
  for (auto& [key, sum] : sums) sum /= static_cast<double>(counts[key]);
  return sums;
}

}  // namespace

int main(int argc, char** argv) {
  const phisched::ArgParser args(argc, argv);
  if (args.positional().size() != 2 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CANDIDATE.json "
                 "[--threshold FRACTION] [--abs-threshold UNITS] [--all]\n"
                 "  --threshold      relative regression tolerance "
                 "(default 0.02 = 2%%)\n"
                 "  --abs-threshold  absolute tolerance used when the "
                 "baseline is 0 (default 1e-6)\n"
                 "  --all            also list metrics with no bad "
                 "direction\n",
                 args.program().c_str());
    return 2;
  }
  const double threshold = args.get_real_or("threshold", 0.02);
  const double abs_threshold = args.get_real_or("abs-threshold", 1e-6);
  const bool show_all = args.get_bool_or("all", false);

  const auto baseline = load_report(args.positional()[0]);
  const auto candidate = load_report(args.positional()[1]);
  if (!baseline || !candidate) return 2;
  if (!baseline->bench.empty() && !candidate->bench.empty() &&
      baseline->bench != candidate->bench) {
    std::fprintf(stderr, "bench_diff: comparing different benches (%s vs %s)\n",
                 baseline->bench.c_str(), candidate->bench.c_str());
  }

  const auto base_means = metric_means(*baseline);
  const auto cand_means = metric_means(*candidate);

  AsciiTable table({"Metric", "Baseline", "Candidate", "Delta", "Delta %",
                    "Verdict"});
  std::vector<std::string> regressions;
  for (const auto& [metric, base] : base_means) {
    const auto it = cand_means.find(metric);
    if (it == cand_means.end()) continue;
    const double cand = it->second;
    const int direction = bad_direction(metric);
    if (direction == 0 && !show_all) continue;

    const double delta = cand - base;
    // A zero baseline has no meaningful relative delta (and naive
    // division would print inf/nan and corrupt the verdict); fall back
    // to the absolute delta there.
    const bool has_rel = base != 0.0;
    const double rel = has_rel ? delta / std::fabs(base) : 0.0;
    std::string verdict = "-";
    if (direction != 0) {
      const double bad = static_cast<double>(direction) *
                         (has_rel ? rel : delta);
      const double limit = has_rel ? threshold : abs_threshold;
      const bool worse = bad > limit;
      const bool better = bad < -limit;
      verdict = worse ? "REGRESSED" : better ? "improved" : "ok";
      if (worse) regressions.push_back(metric);
    }
    table.add_row({metric, AsciiTable::cell(base, 3), AsciiTable::cell(cand, 3),
                   AsciiTable::cell(delta, 3),
                   has_rel ? AsciiTable::percent(rel, 2) : "n/a", verdict});
  }

  // Seed-paired check: a regression on any shared seed counts even when
  // the means stay inside the tolerance.
  for (const auto& [seed, base_metrics] : baseline->runs) {
    const auto run = candidate->runs.find(seed);
    if (run == candidate->runs.end()) continue;
    for (const auto& [metric, base] : base_metrics) {
      const int direction = bad_direction(metric);
      if (direction == 0) continue;
      const auto it = run->second.find(metric);
      if (it == run->second.end()) continue;
      const double delta = it->second - base;
      const bool has_rel = base != 0.0;
      const double bad = static_cast<double>(direction) *
                         (has_rel ? delta / std::fabs(base) : delta);
      if (bad > (has_rel ? threshold : abs_threshold)) {
        const std::string tag =
            metric + " (seed " + std::to_string(seed) + ")";
        if (std::find(regressions.begin(), regressions.end(), tag) ==
            regressions.end()) {
          regressions.push_back(tag);
        }
      }
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("seeds: %zu baseline, %zu candidate; threshold %.1f%%\n",
              baseline->runs.size(), candidate->runs.size(),
              threshold * 100.0);
  if (!regressions.empty()) {
    std::printf("\nREGRESSIONS (%zu):\n", regressions.size());
    for (const std::string& r : regressions) std::printf("  %s\n", r.c_str());
    return 1;
  }
  std::printf("no regressions.\n");
  return 0;
}
