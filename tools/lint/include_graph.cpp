// phisched_lint — whole-program include-graph passes.
//
// Three rules run over the project include graph (quoted includes only —
// system headers are not part of the architecture):
//
//   layering        an include edge that climbs the architecture layer DAG
//                   (e.g. phi/ including cosmic/) or crosses between
//                   unrelated layers. The DAG is the one documented in
//                   docs/architecture.md; --list-layers prints the table
//                   and the lint_layer_sync test diffs the two.
//   include-cycle   a strongly connected component of project files. Even
//                   guard-protected cycles make build order and refactors
//                   fragile, so they are banned outright.
//   unused-include  a quoted include whose header contributes no name the
//                   including file mentions. Heuristic, marker-based:
//                   headers export type/function/macro/enumerator names;
//                   an include is credited when any marker (its own, or —
//                   transitively — one from a header it re-exports)
//                   appears in the includer. Headers with no recognizable
//                   markers are never flagged.

#include "lint/lint.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <set>

namespace phisched::lint {

namespace {

// ---------------------------------------------------------------------------
// The architecture layer DAG
// ---------------------------------------------------------------------------

struct Layer {
  const char* name;
  std::vector<const char*> deps;  // layers this one may include from
};

// Order matters only for presentation; every layer implicitly depends on
// itself. tools/bench/tests/examples sit on top and may include anything.
const std::vector<Layer>& layers() {
  static const std::vector<Layer> kLayers = {
      {"common", {}},
      {"obs", {"common"}},
      {"classad", {"common"}},
      {"workload", {"common"}},
      {"knapsack", {"common"}},
      {"sim", {"common", "obs"}},
      {"phi", {"common", "obs", "sim"}},
      {"cosmic", {"common", "obs", "sim", "phi"}},
      {"condor", {"common", "obs", "sim", "classad", "workload", "knapsack"}},
      {"core",
       {"common", "obs", "sim", "classad", "workload", "knapsack", "condor"}},
      {"cluster",
       {"common", "obs", "sim", "classad", "workload", "knapsack", "phi",
        "cosmic", "condor", "core"}},
  };
  return kLayers;
}

const std::set<std::string, std::less<>>& top_layers() {
  static const std::set<std::string, std::less<>> kTop = {"tools", "bench",
                                                          "tests", "examples"};
  return kTop;
}

/// The layer a path belongs to: the first path component (left to right)
/// naming a src layer or a top layer; otherwise the file's root argument
/// (so `phisched_lint src` assigns stray files to "src", which is
/// unknown and therefore unconstrained).
std::string layer_of(const FileText& f) {
  std::string component;
  auto classify = [](const std::string& c) -> bool {
    for (const Layer& l : layers()) {
      if (c == l.name) return true;
    }
    return top_layers().count(c) > 0;
  };
  for (const std::string& path : {f.rel, f.path}) {
    component.clear();
    for (char ch : path) {
      if (ch == '/') {
        if (classify(component)) return component;
        component.clear();
      } else {
        component += ch;
      }
    }
    if (classify(component)) return component;
  }
  return f.root;
}

const Layer* find_layer(const std::string& name) {
  for (const Layer& l : layers()) {
    if (name == l.name) return &l;
  }
  return nullptr;
}

/// True when layer `from` may include from layer `to`.
bool edge_allowed(const std::string& from, const std::string& to) {
  if (from == to) return true;
  if (top_layers().count(from) > 0) return true;  // harnesses see everything
  const Layer* l = find_layer(from);
  if (l == nullptr) return true;  // unknown includer — unconstrained
  const Layer* t = find_layer(to);
  if (t == nullptr && top_layers().count(to) == 0) return true;  // unknown dep
  for (const char* d : l->deps) {
    if (to == d) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Include extraction and resolution
// ---------------------------------------------------------------------------

struct Include {
  std::size_t offset = 0;   // of the '#'
  std::string spelling;     // the quoted path as written
  int target = -1;          // index into files, -1 when unresolved
  bool exported = false;    // carries an export pragma
};

/// Every `#include "..."` directive in the file (angle includes are
/// system/stdlib and ignored). Parsed from code_strings so the quoted
/// path survives sanitization; a directive must be the first token on
/// its (logical) line.
std::vector<Include> parse_includes(const FileText& f) {
  std::vector<Include> out;
  const std::string& code = f.code_strings;
  std::size_t pos = 0;
  while ((pos = code.find('#', pos)) != std::string::npos) {
    const std::size_t hash = pos;
    ++pos;
    // Only at the start of a line (allowing leading whitespace).
    std::size_t p = hash;
    while (p > 0 && (code[p - 1] == ' ' || code[p - 1] == '\t')) --p;
    if (p != 0 && code[p - 1] != '\n') continue;
    p = skip_spaces(code, hash + 1);
    if (code.compare(p, 7, "include") != 0) continue;
    p = skip_spaces(code, p + 7);
    if (p >= code.size() || code[p] != '"') continue;
    const std::size_t close = code.find('"', p + 1);
    if (close == std::string::npos) continue;
    Include inc;
    inc.offset = hash;
    inc.spelling = code.substr(p + 1, close - p - 1);
    // Export pragma on the same raw line keeps re-exported names credited.
    const std::string_view line = f.raw_line(f.line_of(hash));
    inc.exported = line.find("IWYU pragma: export") != std::string_view::npos ||
                   line.find("phisched-lint: export") != std::string_view::npos;
    out.push_back(std::move(inc));
    pos = close;
  }
  return out;
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Lexically normalizes "a/b/../c" and "a/./c".
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  auto push = [&]() {
    if (cur.empty() || cur == ".") {
    } else if (cur == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else {
      parts.push_back(cur);
    }
    cur.clear();
  };
  for (char c : path) {
    if (c == '/') push();
    else cur += c;
  }
  push();
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += '/';
    out += p;
  }
  return out;
}

// ---------------------------------------------------------------------------
// unused-include markers
// ---------------------------------------------------------------------------

bool is_keyword(const std::string& w) {
  static const std::set<std::string, std::less<>> kKeywords = {
      "if",       "for",      "while",    "switch",   "return",  "sizeof",
      "alignof",  "decltype", "static",   "const",    "constexpr","inline",
      "noexcept", "new",      "delete",   "operator", "template","typename",
      "class",    "struct",   "enum",     "union",    "namespace","using",
      "public",   "private",  "protected","virtual",  "override","final",
      "case",     "default",  "do",       "else",     "goto",    "try",
      "catch",    "throw",    "explicit", "friend",   "typedef", "void",
      "bool",     "char",     "int",      "long",     "short",   "float",
      "double",   "unsigned", "signed",   "auto",     "extern",  "static_assert",
      "requires", "concept",  "co_await", "co_return","co_yield","assert"};
  return kKeywords.count(w) > 0;
}

/// Names a header exports: classes/structs/enums/unions, `using X = `,
/// `#define X`, enumerators, and namespace-scope function/variable names.
/// Brace nesting is tracked so only namespace-scope declarations count as
/// function/variable markers (members are reached via their class name).
std::set<std::string> header_markers(const FileText& f) {
  std::set<std::string> markers;
  const std::string& code = f.code;

  auto word_at = [&](std::size_t p) -> std::string {
    std::size_t q = p;
    while (q < code.size() && is_ident_char(code[q])) ++q;
    return q > p && is_ident_start(code[p]) ? code.substr(p, q - p)
                                            : std::string();
  };

  // class/struct/enum/union NAME, using NAME =, plus enumerator capture.
  for (std::string_view kw : {"class", "struct", "enum", "union"}) {
    std::size_t pos = 0;
    while ((pos = code.find(kw, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kw.size();
      if ((start > 0 && is_ident_char(code[start - 1])) ||
          (pos < code.size() && is_ident_char(code[pos]))) {
        continue;
      }
      std::size_t p = skip_spaces(code, pos);
      // enum class NAME / enum struct NAME
      if (kw == "enum") {
        for (std::string_view k2 : {"class", "struct"}) {
          if (code.compare(p, k2.size(), k2) == 0 &&
              !is_ident_char(code[p + k2.size()])) {
            p = skip_spaces(code, p + k2.size());
            break;
          }
        }
      }
      const std::string name = word_at(p);
      if (name.empty() || is_keyword(name)) continue;
      markers.insert(name);
      // Enumerators are usable without naming the enum type.
      if (kw == "enum") {
        std::size_t b = p + name.size();
        // Skip an optional `: underlying_type` up to '{' or ';'.
        while (b < code.size() && code[b] != '{' && code[b] != ';') ++b;
        if (b < code.size() && code[b] == '{') {
          const std::size_t be = skip_balanced(code, b, '{', '}');
          if (be != std::string::npos) {
            std::size_t e = b + 1;
            while (e < be - 1) {
              e = skip_spaces(code, e);
              const std::string en = word_at(e);
              if (!en.empty()) markers.insert(en);
              // Advance to past the next top-level ','.
              int depth = 0;
              while (e < be - 1) {
                const char c = code[e];
                if (c == '{' || c == '(' || c == '[') ++depth;
                else if (c == '}' || c == ')' || c == ']') --depth;
                else if (c == ',' && depth == 0) {
                  ++e;
                  break;
                }
                ++e;
              }
            }
          }
        }
      }
    }
  }

  // using NAME = ...;
  {
    std::size_t pos = 0;
    while ((pos = code.find("using", pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += 5;
      if ((start > 0 && is_ident_char(code[start - 1])) ||
          (pos < code.size() && is_ident_char(code[pos]))) {
        continue;
      }
      const std::size_t p = skip_spaces(code, pos);
      const std::string name = word_at(p);
      if (name.empty() || is_keyword(name)) continue;
      const std::size_t eq = skip_spaces(code, p + name.size());
      if (eq < code.size() && code[eq] == '=') markers.insert(name);
    }
  }

  // #define NAME — from code_strings' raw layout via the raw text, since
  // sanitize never touches preprocessor names.
  {
    const std::string& src = f.code_strings;
    std::size_t pos = 0;
    while ((pos = src.find("#define", pos)) != std::string::npos) {
      std::size_t p = pos;
      while (p > 0 && (src[p - 1] == ' ' || src[p - 1] == '\t')) --p;
      const bool at_line_start = p == 0 || src[p - 1] == '\n';
      pos += 7;
      if (!at_line_start) continue;
      const std::size_t n = skip_spaces(src, pos);
      const std::string name = word_at(n);
      if (!name.empty()) markers.insert(name);
    }
  }

  // Namespace-scope function and variable names. Walk braces, tracking
  // whether each open brace belongs to a namespace (declarations inside
  // stay "top-level") or anything else (skipped).
  {
    std::vector<bool> ns_stack;  // true = namespace-like scope
    auto at_top = [&]() {
      for (bool ns : ns_stack) {
        if (!ns) return false;
      }
      return true;
    };
    std::size_t i = 0;
    std::string last_word;
    std::string prev_word;
    bool pending_ns = false;  // saw `namespace` since the last ';' or brace
    char last_nonspace = 0;   // previous non-space char before current token
    while (i < code.size()) {
      const char c = code[i];
      if (is_ident_start(c) && (i == 0 || !is_ident_char(code[i - 1]))) {
        std::size_t q = i;
        while (q < code.size() && is_ident_char(code[q])) ++q;
        prev_word = last_word;
        last_word = code.substr(i, q - i);
        // `namespace` opens a namespace-scope brace unless it is part of
        // `using namespace ...;` (which ends at ';', clearing the flag).
        if (last_word == "namespace" && prev_word != "using") pending_ns = true;
        // Function candidate: IDENT '(' at namespace scope, where the
        // char before IDENT suggests a declarator tail, and IDENT is not
        // a keyword or macro-like control word.
        if (at_top() && !is_keyword(last_word)) {
          const std::size_t after = skip_spaces(code, q);
          if (after < code.size() && code[after] == '(' &&
              (is_ident_char(last_nonspace) || last_nonspace == '>' ||
               last_nonspace == '&' || last_nonspace == '*' ||
               last_nonspace == ']')) {
            markers.insert(last_word);
          }
          // Variable candidate: IDENT then '=' or ';' at namespace scope,
          // preceded by a type-ish char.
          if (after < code.size() && (code[after] == '=' || code[after] == ';') &&
              (after + 1 >= code.size() || code[after + 1] != '=') &&
              (is_ident_char(last_nonspace) || last_nonspace == '>' ||
               last_nonspace == '&' || last_nonspace == '*')) {
            markers.insert(last_word);
          }
        }
        last_nonspace = code[q - 1];
        i = q;
        continue;
      }
      if (c == '{') {
        ns_stack.push_back(pending_ns);
        pending_ns = false;
      } else if (c == '}') {
        if (!ns_stack.empty()) ns_stack.pop_back();
      } else if (c == ';') {
        pending_ns = false;
      }
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') last_nonspace = c;
      ++i;
    }
  }

  markers.erase("");
  return markers;
}

/// Markers of `file` plus, transitively, markers of headers it re-exports
/// (all its quoted includes — a header including another makes the
/// included names reachable through it, which is what "credited" means
/// for the heuristic). Memoized; cycles terminate via the visiting set.
const std::set<std::string>& credited_markers(
    std::size_t idx, const std::vector<FileText>& files,
    const std::vector<std::vector<Include>>& includes,
    std::vector<std::set<std::string>>& memo, std::vector<int>& state) {
  if (state[idx] != 0) return memo[idx];  // done or in-progress (cycle)
  state[idx] = 1;
  std::set<std::string> all = header_markers(files[idx]);
  for (const Include& inc : includes[idx]) {
    if (inc.target < 0) continue;
    const std::set<std::string>& sub = credited_markers(
        static_cast<std::size_t>(inc.target), files, includes, memo, state);
    all.insert(sub.begin(), sub.end());
  }
  memo[idx] = std::move(all);
  state[idx] = 2;
  return memo[idx];
}

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// ---------------------------------------------------------------------------
// Tarjan SCC for include-cycle
// ---------------------------------------------------------------------------

struct Tarjan {
  static constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  const std::vector<std::vector<std::size_t>>& adj;
  std::vector<std::size_t> index, low;
  std::vector<char> on_stack;
  std::vector<std::size_t> stack;
  std::size_t counter = 0;
  std::vector<std::vector<std::size_t>> sccs;

  explicit Tarjan(const std::vector<std::vector<std::size_t>>& a)
      : adj(a),
        index(a.size(), kUnvisited),
        low(a.size(), 0),
        on_stack(a.size(), 0) {}

  void run() {
    for (std::size_t v = 0; v < adj.size(); ++v) {
      if (index[v] == kUnvisited) strongconnect(v);
    }
  }

  void strongconnect(std::size_t v) {
    // Iterative DFS (explicit stack) — include graphs are shallow but the
    // tool should not assume so.
    struct Frame {
      std::size_t v;
      std::size_t next_edge;
    };
    std::vector<Frame> frames{{v, 0}};
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.next_edge == 0) {
        index[fr.v] = low[fr.v] = counter++;
        stack.push_back(fr.v);
        on_stack[fr.v] = 1;
      }
      bool descended = false;
      while (fr.next_edge < adj[fr.v].size()) {
        const std::size_t w = adj[fr.v][fr.next_edge++];
        if (index[w] == kUnvisited) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w] != 0) low[fr.v] = std::min(low[fr.v], index[w]);
      }
      if (descended) continue;
      if (low[fr.v] == index[fr.v]) {
        std::vector<std::size_t> scc;
        std::size_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
        } while (w != fr.v);
        if (scc.size() > 1) sccs.push_back(std::move(scc));
      }
      const std::size_t child = fr.v;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[child]);
      }
    }
  }
};

}  // namespace

std::string layer_table_text() {
  std::string out;
  std::size_t width = 0;
  for (const Layer& l : layers()) width = std::max(width, std::string(l.name).size());
  for (const Layer& l : layers()) {
    std::string line = l.name;
    line.append(width - line.size() + 1, ' ');
    line += "-> ";
    if (l.deps.empty()) {
      line += "(none)";
    } else {
      for (std::size_t i = 0; i < l.deps.size(); ++i) {
        if (i != 0) line += ' ';
        line += l.deps[i];
      }
    }
    out += line;
    out += '\n';
  }
  out += "tools/bench/tests/examples -> (any)\n";
  return out;
}

bool run_include_passes(const std::vector<FileText>& files,
                        const std::string& dot_out,
                        std::vector<Finding>& out) {
  // Resolution map: every file is registered under its rel path; when the
  // rel path starts with "src/" the stripped form is registered too, so
  // `#include "phi/device.hpp"` resolves whether the tool was pointed at
  // the repo root or at src/ itself.
  std::map<std::string, int> by_name;
  for (std::size_t i = 0; i < files.size(); ++i) {
    by_name[files[i].rel] = static_cast<int>(i);
  }

  std::vector<std::vector<Include>> includes(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    includes[i] = parse_includes(files[i]);
    for (Include& inc : includes[i]) {
      const auto hit = by_name.find(normalize(inc.spelling));
      if (hit != by_name.end()) {
        inc.target = hit->second;
        continue;
      }
      // Sibling resolution: relative to the including file's directory.
      const std::string dir = dirname_of(files[i].rel);
      if (!dir.empty()) {
        const auto sib = by_name.find(normalize(dir + "/" + inc.spelling));
        if (sib != by_name.end()) inc.target = sib->second;
      }
    }
  }

  // --- layering ---
  std::vector<std::string> layer(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) layer[i] = layer_of(files[i]);
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const Include& inc : includes[i]) {
      if (inc.target < 0) continue;
      const std::string& from = layer[i];
      const std::string& to = layer[static_cast<std::size_t>(inc.target)];
      if (edge_allowed(from, to)) continue;
      out.push_back(
          {files[i].path, files[i].line_of(inc.offset), "layering",
           "include of \"" + inc.spelling + "\" crosses the layer DAG: " +
               from + " may not depend on " + to +
               " (allowed deps for " + from + ": " +
               [&]() -> std::string {
                 const Layer* l = find_layer(from);
                 if (l == nullptr || l->deps.empty()) return "(none)";
                 std::string s;
                 for (std::size_t k = 0; k < l->deps.size(); ++k) {
                   if (k != 0) s += ' ';
                   s += l->deps[k];
                 }
                 return s;
               }() +
               ") — see docs/architecture.md, or invert the dependency"});
    }
  }

  // --- include-cycle ---
  std::vector<std::vector<std::size_t>> adj(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const Include& inc : includes[i]) {
      if (inc.target >= 0) adj[i].push_back(static_cast<std::size_t>(inc.target));
    }
  }
  Tarjan tarjan(adj);
  tarjan.run();
  for (std::vector<std::size_t>& scc : tarjan.sccs) {
    std::sort(scc.begin(), scc.end(), [&](std::size_t a, std::size_t b) {
      return files[a].path < files[b].path;
    });
    std::string members;
    for (std::size_t k = 0; k < scc.size(); ++k) {
      if (k != 0) members += " <-> ";
      members += files[scc[k]].path;
    }
    // Anchor the finding at the first member's include of another member.
    const std::size_t head = scc[0];
    std::size_t line = 1;
    for (const Include& inc : includes[head]) {
      if (inc.target >= 0 &&
          std::find(scc.begin(), scc.end(),
                    static_cast<std::size_t>(inc.target)) != scc.end()) {
        line = files[head].line_of(inc.offset);
        break;
      }
    }
    out.push_back({files[head].path, line, "include-cycle",
                   "include cycle between project files: " + members +
                       " — break the cycle with a forward declaration or by "
                       "moving the shared piece down a layer"});
  }

  // --- unused-include ---
  std::vector<std::set<std::string>> memo(files.size());
  std::vector<int> state(files.size(), 0);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string own_stem = stem_of(files[i].rel);
    for (const Include& inc : includes[i]) {
      if (inc.target < 0 || inc.exported) continue;
      // A .cpp including its own header is definitionally fine.
      if (stem_of(inc.spelling) == own_stem) continue;
      const std::set<std::string>& markers = credited_markers(
          static_cast<std::size_t>(inc.target), files, includes, memo, state);
      if (markers.empty()) continue;  // nothing recognizable — stay quiet
      bool used = false;
      for (const std::string& m : markers) {
        if (contains_word(files[i].code, m)) {
          used = true;
          break;
        }
      }
      if (used) continue;
      out.push_back(
          {files[i].path, files[i].line_of(inc.offset), "unused-include",
           "include of \"" + inc.spelling +
               "\" contributes no name used in this file — remove it, or "
               "mark it '// phisched-lint: export' if it is re-exported on "
               "purpose"});
    }
  }

  // --- DOT graph ---
  if (!dot_out.empty()) {
    std::ofstream dot(dot_out);
    if (!dot) {
      std::cerr << "phisched_lint: cannot write " << dot_out << "\n";
      return false;
    }
    dot << "digraph includes {\n  rankdir=LR;\n  node [shape=box, "
           "fontname=\"monospace\"];\n";
    // Cluster files by layer for readability.
    std::map<std::string, std::vector<std::size_t>> by_layer;
    for (std::size_t i = 0; i < files.size(); ++i) {
      by_layer[layer[i]].push_back(i);
    }
    int cluster = 0;
    for (const auto& [lname, members] : by_layer) {
      dot << "  subgraph cluster_" << cluster++ << " {\n    label=\"" << lname
          << "\";\n";
      for (std::size_t idx : members) {
        dot << "    \"" << files[idx].path << "\";\n";
      }
      dot << "  }\n";
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (const Include& inc : includes[i]) {
        if (inc.target < 0) continue;
        const bool bad = !edge_allowed(
            layer[i], layer[static_cast<std::size_t>(inc.target)]);
        dot << "  \"" << files[i].path << "\" -> \""
            << files[static_cast<std::size_t>(inc.target)].path << "\"";
        if (bad) dot << " [color=red, penwidth=2]";
        dot << ";\n";
      }
    }
    dot << "}\n";
    if (!dot) {
      std::cerr << "phisched_lint: error writing " << dot_out << "\n";
      return false;
    }
  }

  return true;
}

}  // namespace phisched::lint
