// phisched_lint — shared types and helpers for the multi-pass analyzer.
//
// The tool grew from a single-pass pattern scanner into a whole-program
// analyzer with three pass families, each in its own translation unit:
//
//   rules.cpp          per-file determinism pattern rules (unordered-iter,
//                      wall-clock, rng-discipline, pointer-key,
//                      nontotal-sort, schedule-tiebreak, float-order)
//   include_graph.cpp  whole-program include graph: the architecture layer
//                      DAG (`layering`), file-level `include-cycle`s,
//                      `unused-include` pruning, and --graph-out DOT
//   schema.cpp         telemetry-schema extraction from obs::Recorder /
//                      obs::Registry registration calls, cross-checked
//                      against docs/telemetry.md and bench/golden
//                      (`schema-undocumented`, `schema-orphan`,
//                      `schema-golden`), and --schema-out JSON
//
// source.cpp holds the shared lexing layer: the comment/string stripper
// (hardened against raw strings, CRLF, and backslash line continuations),
// offset→line mapping, and small token helpers every pass uses.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace phisched::lint {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// One loaded source file, pre-lexed once for every pass.
struct FileText {
  std::string path;     // as reported (generic, matches the CLI argument)
  std::string rel;      // include-name: path relative to its root, with a
                        // leading "src/" component stripped
  std::string root;     // basename of the root argument this file came from
  std::string raw;      // original bytes
  std::string code;     // comments, strings, and char literals blanked
  std::string code_strings;  // comments blanked, string literals KEPT
  std::vector<std::size_t> line_starts;
  bool decision_path = false;
  bool rng_file = false;        // common/rng owns the one random_device use
  bool timing_exempt = false;   // bench/ and tools/ time their own walls

  [[nodiscard]] std::size_t line_of(std::size_t offset) const;
  /// Raw text of a 1-based line (empty when out of range), CR/LF trimmed.
  [[nodiscard]] std::string_view raw_line(std::size_t line) const;
};

// --------------------------------------------------------------------------
// source.cpp — lexing layer
// --------------------------------------------------------------------------

/// Blanks comments (and, unless keep_strings, string/char literals) with
/// spaces while preserving every line break, so offsets keep mapping to
/// line numbers and tokens never match inside quoted or commented text.
/// Handles raw string literals (R"(...)", including u8/u/U/L prefixes),
/// CRLF line endings, and backslash line continuations (a line comment
/// whose physical line ends in `\` continues onto the next line, exactly
/// as the C++ phase-2 splice makes it).
[[nodiscard]] std::string sanitize(const std::string& text, bool keep_strings);

/// Loads and pre-lexes one file. Returns false (with a message on stderr)
/// when the file cannot be read.
[[nodiscard]] bool load_file(const fs::path& path, const std::string& rel,
                             const std::string& root, FileText& out);

[[nodiscard]] bool is_ident_char(char c);
[[nodiscard]] bool is_ident_start(char c);
[[nodiscard]] std::size_t skip_spaces(const std::string& s, std::size_t pos);
/// Skips a balanced <...> starting at `pos` (which must point at '<').
/// Returns the offset just past the matching '>', or npos on imbalance.
[[nodiscard]] std::size_t skip_angles(const std::string& s, std::size_t pos);
/// Skips a balanced bracket pair ((), [], {}) starting at `pos` (which
/// must point at the opener). Returns the offset just past the closer.
[[nodiscard]] std::size_t skip_balanced(const std::string& s, std::size_t pos,
                                        char open, char close);
/// The identifier ending just before `pos` (skipping trailing spaces), or
/// empty. Used to inspect `::` qualifiers and member-access receivers.
[[nodiscard]] std::string ident_before(const std::string& s, std::size_t pos);
[[nodiscard]] bool contains_word(const std::string& s, const std::string& word);

/// Rules allowed on `line` by a `// phisched-lint: allow(...)` marker on
/// the same line or the line immediately above.
[[nodiscard]] bool is_suppressed(const FileText& f, std::size_t line,
                                 const std::string& rule);

// --------------------------------------------------------------------------
// rules.cpp — per-file determinism pattern rules
// --------------------------------------------------------------------------

void scan_pattern_rules(const FileText& f, std::vector<Finding>& out);

// --------------------------------------------------------------------------
// include_graph.cpp — layering / include-cycle / unused-include passes
// --------------------------------------------------------------------------

/// The enforced architecture layer table, exactly as printed by
/// --list-layers and mirrored in docs/architecture.md (the
/// lint_layer_sync test diffs the two).
[[nodiscard]] std::string layer_table_text();

/// Runs the whole-program include passes over every loaded file.
/// When `dot_out` is non-empty, writes the project include graph as DOT.
/// Returns false (with a message on stderr) on an I/O error writing DOT.
[[nodiscard]] bool run_include_passes(const std::vector<FileText>& files,
                                      const std::string& dot_out,
                                      std::vector<Finding>& out);

// --------------------------------------------------------------------------
// schema.cpp — telemetry-schema extraction and cross-checks
// --------------------------------------------------------------------------

struct SchemaOptions {
  std::string docs_path;    // docs/telemetry.md (empty = no cross-check)
  std::vector<std::string> golden_paths;  // BENCH_*.json files
  std::string schema_out;   // --schema-out destination (empty = none)
};

/// Extracts every metric/event name pattern flowing into obs::Recorder /
/// obs::Registry registration calls (plus `phisched-lint: emits` comment
/// annotations for names emitted through an indirection), cross-checks
/// the set against the telemetry-schema block in `docs_path` and the
/// metric names in the golden bench files, and optionally writes the
/// extracted schema as JSON. Returns false on an I/O error.
[[nodiscard]] bool run_schema_pass(const std::vector<FileText>& files,
                                   const SchemaOptions& opts,
                                   std::vector<Finding>& out);

}  // namespace phisched::lint
