// phisched_lint — per-file determinism pattern rules.
//
// Every equivalence suite in this repo (SwitchOffEquivalence, harness
// step-vs-oneshot, telemetry identity, the golden bench gates) relies on
// the discrete-event core being bit-identical across runs, seeds, and
// snapshot interleavings. That property depends on coding rules nothing
// in the compiler enforces: no iteration order leaking out of unordered
// containers into decisions, no wall-clock or unseeded-PRNG calls inside
// the simulation, no pointer-keyed ordered containers, total comparators
// with explicit tie-breaks wherever events are ordered, and no
// floating-point reductions in hash order (fp addition is not
// associative, so the *bits* of a sum depend on iteration order even
// when the set of addends is fixed).

#include "lint/lint.hpp"

#include <algorithm>
#include <set>

namespace phisched::lint {

namespace {

/// All identifiers declared in this file as unordered containers
/// (members, locals, parameters): `std::unordered_map<K, V> name...`.
std::vector<std::string> unordered_decls(const std::string& code) {
  std::vector<std::string> names;
  static const std::string_view kKinds[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (std::string_view kind : kKinds) {
    std::size_t pos = 0;
    while ((pos = code.find(kind, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kind.size();
      if ((start > 0 && is_ident_char(code[start - 1])) ||
          (pos < code.size() && is_ident_char(code[pos]))) {
        continue;  // substring of a longer identifier
      }
      std::size_t p = skip_spaces(code, pos);
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_angles(code, p);
      if (p == std::string::npos) continue;
      p = skip_spaces(code, p);
      if (code.compare(p, 2, "::") == 0) continue;  // ::iterator etc.
      // Reference/pointer declarators and cv come between type and name.
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = skip_spaces(code, p + 1);
      }
      if (code.compare(p, 5, "const") == 0 && !is_ident_char(code[p + 5])) {
        p = skip_spaces(code, p + 5);
      }
      std::size_t q = p;
      while (q < code.size() && is_ident_char(code[q])) ++q;
      if (q > p && is_ident_start(code[p])) names.push_back(code.substr(p, q - p));
      pos = q;
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// A range-for whose range expression iterates an unordered container.
struct UnorderedLoop {
  std::size_t offset = 0;      // of the `for` keyword
  std::string range;           // the range expression text
  std::size_t body_begin = 0;  // first offset of the loop body
  std::size_t body_end = 0;    // one past the last offset of the body
  std::string what;            // "expression" or "'name'" for messages
};

/// Finds every range-for over an unordered container: the range
/// expression either mentions an unordered_* type directly or names an
/// identifier declared as an unordered container in this file.
std::vector<UnorderedLoop> find_unordered_loops(
    const std::string& code, const std::vector<std::string>& vars) {
  std::vector<UnorderedLoop> loops;
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    const std::size_t kw = pos;
    pos += 3;
    if ((kw > 0 && is_ident_char(code[kw - 1])) ||
        (pos < code.size() && is_ident_char(code[pos]))) {
      continue;
    }
    std::size_t p = skip_spaces(code, pos);
    if (p >= code.size() || code[p] != '(') continue;
    const std::size_t close = skip_balanced(code, p, '(', ')');
    if (close == std::string::npos) continue;
    const std::string inside = code.substr(p + 1, close - p - 2);
    // Top-level ':' (not '::') splits declaration from range expression.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < inside.size(); ++i) {
      const char c = inside[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ':' && depth == 0) {
        if ((i > 0 && inside[i - 1] == ':') ||
            (i + 1 < inside.size() && inside[i + 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    UnorderedLoop loop;
    loop.offset = kw;
    loop.range = inside.substr(colon + 1);
    if (loop.range.find("unordered_") != std::string::npos) {
      loop.what = "expression";
    } else {
      for (const std::string& v : vars) {
        if (contains_word(loop.range, v)) {
          loop.what = "'" + v + "'";
          break;
        }
      }
      if (loop.what.empty()) continue;
    }
    // Body: a `{...}` block, or a single statement up to ';'.
    std::size_t b = skip_spaces(code, close);
    if (b < code.size() && code[b] == '{') {
      const std::size_t be = skip_balanced(code, b, '{', '}');
      if (be == std::string::npos) continue;
      loop.body_begin = b + 1;
      loop.body_end = be - 1;
    } else {
      const std::size_t semi = code.find(';', b);
      if (semi == std::string::npos) continue;
      loop.body_begin = b;
      loop.body_end = semi;
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------
void scan_unordered_iter(const FileText& f,
                         const std::vector<std::string>& vars,
                         const std::vector<UnorderedLoop>& loops,
                         std::vector<Finding>& out) {
  if (!f.decision_path) return;
  const std::string& code = f.code;

  auto flag = [&](std::size_t offset, const std::string& what) {
    out.push_back({f.path, f.line_of(offset), "unordered-iter",
                   "iteration over unordered container " + what +
                       " in a decision path: iteration order is "
                       "implementation-defined and must not feed simulator "
                       "decisions (use std::map/std::vector, or copy and "
                       "sort by a stable key first)"});
  };

  for (const UnorderedLoop& loop : loops) flag(loop.offset, loop.what);

  // Iterator loops: <unordered var>.begin() / .cbegin() / .rbegin().
  for (const std::string& v : vars) {
    std::size_t vp = 0;
    while ((vp = code.find(v, vp)) != std::string::npos) {
      const std::size_t end = vp + v.size();
      if ((vp > 0 && is_ident_char(code[vp - 1])) ||
          (end < code.size() && is_ident_char(code[end]))) {
        vp = end;
        continue;
      }
      std::size_t p = skip_spaces(code, end);
      if (p < code.size() && code[p] == '.') {
        p = skip_spaces(code, p + 1);
        for (std::string_view b : {"begin", "cbegin", "rbegin"}) {
          if (code.compare(p, b.size(), b) == 0 &&
              !is_ident_char(code[p + b.size()])) {
            flag(vp, "'" + v + "'");
            break;
          }
        }
      }
      vp = end;
    }
  }
}

// ---------------------------------------------------------------------------
// Rules: wall-clock and rng-discipline. Both scan identifier tokens and
// share the member-access / qualifier logic; they differ in the token
// tables, the exemption set, and the message.
// ---------------------------------------------------------------------------
struct TokenRule {
  const char* rule;
  const std::set<std::string, std::less<>>& call_only;
  const std::set<std::string, std::less<>>& anywhere;
  const char* message_tail;
};

void scan_token_rule(const FileText& f, const TokenRule& spec,
                     std::vector<Finding>& out) {
  const std::string& code = f.code;
  std::size_t i = 0;
  while (i < code.size()) {
    if (!is_ident_start(code[i])) {
      ++i;
      continue;
    }
    if (i > 0 && is_ident_char(code[i - 1])) {  // mid-identifier
      while (i < code.size() && is_ident_char(code[i])) ++i;
      continue;
    }
    std::size_t end = i;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    const std::string tok = code.substr(i, end - i);
    const bool call_only = spec.call_only.count(tok) > 0;
    const bool anywhere = spec.anywhere.count(tok) > 0;
    if (!call_only && !anywhere) {
      i = end;
      continue;
    }
    // Member access (obj.time(), ptr->clock()) is somebody else's API, and
    // qualified names are only suspect under std:: / chrono:: / global ::.
    bool member = false;
    {
      std::size_t p = i;
      while (p > 0 && (code[p - 1] == ' ' || code[p - 1] == '\t')) --p;
      if (p > 0 && code[p - 1] == '.') member = true;
      if (p > 1 && code[p - 1] == '>' && code[p - 2] == '-') member = true;
      if (p > 1 && code[p - 1] == ':' && code[p - 2] == ':') {
        const std::string qualifier = ident_before(code, p - 2);
        if (!(qualifier.empty() || qualifier == "std" ||
              qualifier == "chrono")) {
          member = true;  // SomeClass::time — a member, not libc
        }
      }
    }
    if (member) {
      i = end;
      continue;
    }
    if (call_only) {
      const std::size_t p = skip_spaces(code, end);
      if (p >= code.size() || code[p] != '(') {
        i = end;
        continue;
      }
      // `int rand() const` declares a member named rand — not a call.
      // A call never directly follows another identifier; the exceptions
      // are expression keywords (`return rand()`, `case`, `throw`, ...).
      std::size_t q = i;
      while (q > 0 && (code[q - 1] == ' ' || code[q - 1] == '\t')) --q;
      if (q > 0 && is_ident_char(code[q - 1])) {
        static const std::set<std::string, std::less<>> kExprKeywords = {
            "return", "co_return", "co_yield", "co_await",
            "throw",  "case",      "else",     "do"};
        if (kExprKeywords.count(ident_before(code, q)) == 0) {
          i = end;
          continue;
        }
      }
    }
    out.push_back({f.path, f.line_of(i), spec.rule,
                   "call to '" + tok + "': " + spec.message_tail});
    i = end;
  }
}

void scan_wall_clock(const FileText& f, std::vector<Finding>& out) {
  if (f.rng_file || f.timing_exempt) return;
  static const std::set<std::string, std::less<>> kCallOnly = {
      "time", "clock", "gettimeofday", "clock_gettime"};
  static const std::set<std::string, std::less<>> kAnywhere = {
      "system_clock", "steady_clock", "high_resolution_clock", "localtime",
      "gmtime"};
  scan_token_rule(
      f,
      {"wall-clock", kCallOnly, kAnywhere,
       "wall-clock time breaks run-to-run reproducibility — simulator code "
       "must read time from Simulator::now() (bench/ and tools/ harnesses, "
       "which time the simulator from outside, are exempt)"},
      out);
}

void scan_rng_discipline(const FileText& f, std::vector<Finding>& out) {
  if (f.rng_file) return;  // common/rng owns the seeded-engine plumbing
  static const std::set<std::string, std::less<>> kCallOnly = {
      "rand",    "srand",   "random",  "drand48", "erand48",
      "lrand48", "nrand48", "mrand48", "jrand48", "shuffle",
      "random_shuffle"};
  static const std::set<std::string, std::less<>> kAnywhere = {
      "random_device", "mt19937",      "mt19937_64", "minstd_rand",
      "minstd_rand0",  "ranlux24",     "ranlux48",   "knuth_b",
      "default_random_engine"};
  scan_token_rule(
      f,
      {"rng-discipline", kCallOnly, kAnywhere,
       "randomness outside the seeded-engine plumbing breaks run-to-run "
       "reproducibility — every random stream must derive from "
       "ExperimentConfig::seed via common/rng (seeded SplitMix/Xoshiro "
       "child splits); std::shuffle's output is also "
       "implementation-defined, so even a seeded engine does not make it "
       "portable"},
      out);
}

// ---------------------------------------------------------------------------
// Rule: float-order
// ---------------------------------------------------------------------------
/// Identifiers declared with a floating-point type in this file
/// (`double x`, `float x`, `auto x = 0.0`, ...).
std::set<std::string> float_decls(const std::string& code) {
  std::set<std::string> names;
  for (std::string_view type : {"double", "float"}) {
    std::size_t pos = 0;
    while ((pos = code.find(type, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += type.size();
      if ((start > 0 && is_ident_char(code[start - 1])) ||
          (pos < code.size() && is_ident_char(code[pos]))) {
        continue;
      }
      std::size_t p = skip_spaces(code, pos);
      std::size_t q = p;
      while (q < code.size() && is_ident_char(code[q])) ++q;
      if (q > p && is_ident_start(code[p])) names.insert(code.substr(p, q - p));
    }
  }
  // auto x = <fp literal>
  std::size_t pos = 0;
  while ((pos = code.find("auto", pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += 4;
    if ((start > 0 && is_ident_char(code[start - 1])) ||
        (pos < code.size() && is_ident_char(code[pos]))) {
      continue;
    }
    std::size_t p = skip_spaces(code, pos);
    std::size_t q = p;
    while (q < code.size() && is_ident_char(code[q])) ++q;
    if (q == p || !is_ident_start(code[p])) continue;
    const std::string name = code.substr(p, q - p);
    std::size_t eq = skip_spaces(code, q);
    if (eq >= code.size() || code[eq] != '=') continue;
    std::size_t v = skip_spaces(code, eq + 1);
    std::size_t ve = v;
    while (ve < code.size() &&
           (is_ident_char(code[ve]) || code[ve] == '.' || code[ve] == '-')) {
      ++ve;
    }
    const std::string init = code.substr(v, ve - v);
    if (init.find('.') != std::string::npos &&
        init.find_first_of("0123456789") != std::string::npos) {
      names.insert(name);
    }
  }
  return names;
}

/// True when `lit` looks like a floating-point literal (digits plus a
/// decimal point or exponent).
bool is_fp_literal(const std::string& lit) {
  if (lit.find_first_of("0123456789") == std::string::npos) return false;
  return lit.find('.') != std::string::npos ||
         lit.find('e') != std::string::npos ||
         lit.find('E') != std::string::npos || lit.back() == 'f';
}

void scan_float_order(const FileText& f,
                      const std::vector<std::string>& vars,
                      const std::vector<UnorderedLoop>& loops,
                      std::vector<Finding>& out) {
  const std::string& code = f.code;
  const std::set<std::string> fp_vars = float_decls(code);

  auto flag = [&](std::size_t offset, const std::string& what) {
    out.push_back(
        {f.path, f.line_of(offset), "float-order",
         "floating-point reduction over unordered container " + what +
             ": fp addition is not associative, so the bits of the sum "
             "depend on hash-table iteration order even when the addends "
             "are fixed — this breaks byte-identical exports everywhere, "
             "not just in decision paths (accumulate over a sorted view, "
             "or keep the accumulator integral)"});
  };

  // Range-for over an unordered container whose body accumulates into a
  // floating-point variable (`x += ...`, `x -= ...`, `x = x + ...`).
  for (const UnorderedLoop& loop : loops) {
    const std::string body =
        code.substr(loop.body_begin, loop.body_end - loop.body_begin);
    bool fp_accum = false;
    for (const std::string& v : fp_vars) {
      std::size_t vp = 0;
      while (!fp_accum && (vp = body.find(v, vp)) != std::string::npos) {
        const std::size_t end = vp + v.size();
        if ((vp > 0 && is_ident_char(body[vp - 1])) ||
            (end < body.size() && is_ident_char(body[end]))) {
          vp = end;
          continue;
        }
        std::size_t p = skip_spaces(body, end);
        if (p + 1 < body.size() && (body[p] == '+' || body[p] == '-') &&
            body[p + 1] == '=') {
          fp_accum = true;
        } else if (p < body.size() && body[p] == '=' &&
                   (p + 1 >= body.size() || body[p + 1] != '=')) {
          // x = x + ... (the variable must appear again on the rhs)
          const std::size_t stmt_end = body.find(';', p);
          const std::string rhs = body.substr(
              p + 1, (stmt_end == std::string::npos ? body.size() : stmt_end) -
                         p - 1);
          if (contains_word(rhs, v)) fp_accum = true;
        }
        vp = end;
      }
      if (fp_accum) break;
    }
    if (fp_accum) flag(loop.offset, loop.what);
  }

  // std::accumulate / std::reduce over an unordered container with a
  // floating-point init value.
  for (std::string_view fn : {"accumulate", "reduce"}) {
    std::size_t pos = 0;
    const std::string needle = "std::" + std::string(fn);
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      const std::size_t call = pos;
      pos += needle.size();
      if (pos < code.size() && is_ident_char(code[pos])) continue;
      std::size_t p = skip_spaces(code, pos);
      if (p >= code.size() || code[p] != '(') continue;
      const std::size_t close = skip_balanced(code, p, '(', ')');
      if (close == std::string::npos) continue;
      const std::string args = code.substr(p + 1, close - p - 2);
      std::string over;
      for (const std::string& v : vars) {
        if (contains_word(args, v)) {
          over = "'" + v + "'";
          break;
        }
      }
      if (over.empty() && args.find("unordered_") != std::string::npos) {
        over = "expression";
      }
      if (over.empty()) continue;
      // Split top-level args; the init value is the third one.
      std::vector<std::string> parts;
      int depth = 0;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= args.size(); ++i) {
        if (i == args.size() || (args[i] == ',' && depth == 0)) {
          parts.push_back(args.substr(start, i - start));
          start = i + 1;
        } else if (args[i] == '(' || args[i] == '[' || args[i] == '{' ||
                   args[i] == '<') {
          ++depth;
        } else if (args[i] == ')' || args[i] == ']' || args[i] == '}' ||
                   args[i] == '>') {
          --depth;
        }
      }
      if (parts.size() < 3) continue;
      std::string init = parts[2];
      init.erase(std::remove_if(init.begin(), init.end(),
                                [](char c) { return c == ' ' || c == '\n' ||
                                                    c == '\t' || c == '\r'; }),
                 init.end());
      bool fp = is_fp_literal(init);
      if (!fp) {
        for (const std::string& v : fp_vars) {
          if (contains_word(init, v)) {
            fp = true;
            break;
          }
        }
      }
      if (fp) flag(call, over);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pointer-key
// ---------------------------------------------------------------------------
void scan_pointer_key(const FileText& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  static const std::string_view kKinds[] = {"map", "set", "multimap",
                                            "multiset"};
  std::size_t pos = 0;
  while ((pos = code.find("std::", pos)) != std::string::npos) {
    std::size_t p = pos + 5;
    std::string_view matched;
    for (std::string_view kind : kKinds) {
      if (code.compare(p, kind.size(), kind) == 0 &&
          p + kind.size() < code.size() &&
          !is_ident_char(code[p + kind.size()])) {
        matched = kind;
        break;
      }
    }
    if (matched.empty()) {
      pos = p;
      continue;
    }
    std::size_t q = skip_spaces(code, p + matched.size());
    if (q >= code.size() || code[q] != '<') {
      pos = p;
      continue;
    }
    // First template argument, at angle depth 1.
    std::string key_type;
    int depth = 0;
    std::size_t i = q;
    for (; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '<') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == '>') {
        if (--depth == 0) break;
      } else if (c == ',' && depth == 1) {
        break;
      } else if (c == ';') {
        break;
      }
      if (depth >= 1) key_type += c;
    }
    if (key_type.find('*') != std::string::npos) {
      // Trim for the message.
      std::string trimmed;
      for (char c : key_type) {
        if (!trimmed.empty() || (c != ' ' && c != '\n' && c != '\t')) {
          trimmed += c == '\n' ? ' ' : c;
        }
      }
      while (!trimmed.empty() && trimmed.back() == ' ') trimmed.pop_back();
      out.push_back(
          {f.path, f.line_of(pos), "pointer-key",
           "std::" + std::string(matched) + " keyed by raw pointer '" +
               trimmed +
               "': pointer values differ between runs, so iteration order "
               "(and anything derived from it) is not reproducible — key by "
               "a stable id instead"});
    }
    pos = i == std::string::npos ? code.size() : i + 1;
  }
}

// ---------------------------------------------------------------------------
// Rules: nontotal-sort and schedule-tiebreak (both inspect sort/heap
// comparator lambdas)
// ---------------------------------------------------------------------------
struct SortCall {
  std::size_t offset = 0;      // of the std::<name> token
  std::string name;            // sort, stable_sort, push_heap, ...
  std::string lambda_body;     // empty when no inline lambda argument
};

std::vector<SortCall> find_sort_calls(const std::string& code) {
  static const std::string_view kNames[] = {
      "sort",      "stable_sort", "partial_sort", "nth_element",
      "make_heap", "push_heap",   "pop_heap",     "sort_heap"};
  std::vector<SortCall> calls;
  std::size_t pos = 0;
  while ((pos = code.find("std::", pos)) != std::string::npos) {
    const std::size_t p = pos + 5;
    std::string_view matched;
    for (std::string_view name : kNames) {
      if (code.compare(p, name.size(), name) == 0 &&
          p + name.size() < code.size() &&
          !is_ident_char(code[p + name.size()])) {
        // Longest match wins (sort vs sort_heap handled by the char check,
        // stable_sort never matches "sort" because of the std:: anchor).
        if (name.size() > matched.size()) matched = name;
      }
    }
    if (matched.empty()) {
      pos = p;
      continue;
    }
    std::size_t q = skip_spaces(code, p + matched.size());
    if (q >= code.size() || code[q] != '(') {
      pos = p;
      continue;
    }
    const std::size_t close = skip_balanced(code, q, '(', ')');
    if (close == std::string::npos) {
      pos = p;
      continue;
    }
    SortCall call;
    call.offset = pos;
    call.name = std::string(matched);
    // Inline lambda argument: a '[' directly after '(' or ','.
    for (std::size_t i = q + 1; i < close - 1; ++i) {
      if (code[i] != '[') continue;
      std::size_t b = i;
      while (b > q + 1 &&
             (code[b - 1] == ' ' || code[b - 1] == '\t' || code[b - 1] == '\n')) {
        --b;
      }
      if (code[b - 1] != '(' && code[b - 1] != ',') continue;
      const std::size_t cap_end = skip_balanced(code, i, '[', ']');
      if (cap_end == std::string::npos || cap_end >= close) break;
      std::size_t body_start = skip_spaces(code, cap_end);
      if (body_start < close && code[body_start] == '(') {
        body_start = skip_balanced(code, body_start, '(', ')');
        if (body_start == std::string::npos) break;
        body_start = skip_spaces(code, body_start);
      }
      // Skip specifiers / trailing return type up to the body brace.
      while (body_start < close && code[body_start] != '{') ++body_start;
      if (body_start >= close) break;
      const std::size_t body_end = skip_balanced(code, body_start, '{', '}');
      if (body_end == std::string::npos || body_end > close) break;
      call.lambda_body = code.substr(body_start + 1, body_end - body_start - 2);
      break;
    }
    calls.push_back(std::move(call));
    pos = close;
  }
  return calls;
}

void scan_sort_rules(const FileText& f, std::vector<Finding>& out) {
  static const char* kTimeWords[] = {"time",     "timestamp",  "arrival",
                                     "deadline", "start_time", "finish_time",
                                     "when",     "arrival_time"};
  static const char* kTieWords[] = {"seq",   "sequence", "id",  "idx",
                                    "index", "tie",      "second"};
  for (const SortCall& call : find_sort_calls(f.code)) {
    if (call.lambda_body.empty()) continue;
    const std::string& body = call.lambda_body;

    // nontotal-sort: <= / >= comparators violate strict weak ordering.
    for (std::string_view op : {"<=", ">="}) {
      const std::size_t at = body.find(op);
      if (at != std::string::npos &&
          body.compare(at, 3, "<=>") != 0) {
        out.push_back(
            {f.path, f.line_of(call.offset), "nontotal-sort",
             "comparator passed to std::" + call.name + " uses '" +
                 std::string(op) +
                 "': equal elements compare true both ways, which is not a "
                 "strict weak ordering (undefined behaviour in libstdc++ "
                 "sort/heap algorithms) — compare with < or > only"});
        break;
      }
    }

    // schedule-tiebreak: plain sort/heap ordering by a timestamp alone.
    // std::stable_sort is exempt — stability IS the deterministic
    // tie-break there.
    if (call.name == "stable_sort" || !f.decision_path) continue;
    const std::size_t semis =
        static_cast<std::size_t>(std::count(body.begin(), body.end(), ';'));
    if (semis > 1 || body.find("return") == std::string::npos) continue;
    bool time_member = false;
    for (const char* w : kTimeWords) {
      std::size_t wp = 0;
      const std::string word = w;
      while ((wp = body.find(word, wp)) != std::string::npos) {
        const std::size_t end = wp + word.size();
        const bool right_ok = end >= body.size() || !is_ident_char(body[end]);
        std::size_t p = wp;
        while (p > 0 && (body[p - 1] == ' ' || body[p - 1] == '\t')) --p;
        const bool member_access =
            (p > 0 && body[p - 1] == '.') ||
            (p > 1 && body[p - 1] == '>' && body[p - 2] == '-');
        if (right_ok && member_access) {
          time_member = true;
          break;
        }
        wp = end;
      }
      if (time_member) break;
    }
    if (!time_member) continue;
    bool has_tiebreak = false;
    for (const char* w : kTieWords) {
      if (contains_word(body, w)) {
        has_tiebreak = true;
        break;
      }
    }
    if (has_tiebreak) continue;
    out.push_back(
        {f.path, f.line_of(call.offset), "schedule-tiebreak",
         "std::" + call.name +
             " comparator orders by a timestamp with no secondary key: "
             "elements with equal times keep container order, which is not "
             "guaranteed stable — add a sequence/id tie-break (like "
             "sim::Simulator's (time, seq) heap order) or use "
             "std::stable_sort"});
  }
}

}  // namespace

void scan_pattern_rules(const FileText& f, std::vector<Finding>& out) {
  const std::vector<std::string> vars = unordered_decls(f.code);
  const std::vector<UnorderedLoop> loops = find_unordered_loops(f.code, vars);
  scan_unordered_iter(f, vars, loops, out);
  scan_wall_clock(f, out);
  scan_rng_discipline(f, out);
  scan_float_order(f, vars, loops, out);
  scan_pointer_key(f, out);
  scan_sort_rules(f, out);
}

}  // namespace phisched::lint
