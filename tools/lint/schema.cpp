// phisched_lint — telemetry-schema extraction and cross-checks.
//
// The observability layer registers every metric through obs::Registry
// (`m.counter(name)`, `m.gauge`, `m.series`, `m.time_histogram`,
// `m.histogram`) and every event through `Recorder::event(t, type, ...)`.
// This pass statically extracts the NAME argument of each call as a
// pattern: string-literal fragments are kept verbatim and every
// non-literal subexpression (`prefix +`, `std::to_string(d)`, ...)
// becomes a `*` wildcard, so
//
//     prefix + ".mic" + std::to_string(d) + ".queue_depth"
//
// extracts as `*.mic*.queue_depth`. Names emitted through an indirection
// the extractor cannot see are declared with an annotation comment:
//
//     // phisched-lint: emits<(>event job_completed, event job_failed<)>
//
// (shown with <(> for the parenthesis so the pass does not read this very
// comment as an annotation)
//
// The extracted set is cross-checked against the fenced
// ```telemetry-schema``` block in docs/telemetry.md (placeholders like
// `<dev>` normalize to `*`) and against the metric names in the golden
// bench files:
//
//   schema-undocumented  an extracted pattern matches no documented entry
//                        of the same kind (misspelled or undocumented)
//   schema-orphan        a documented entry matches no extracted pattern
//                        (the code stopped emitting it), or a documented
//                        `bench` entry matches no golden metric name
//   schema-golden        a golden metric name matches no documented
//                        `bench` entry
//
// Two patterns "match" when their glob languages intersect, decided by a
// memoized two-pattern DP — so `sla.tenant*.wait_p99` matches the doc
// entry `sla.tenant<k>.wait_p99` without either side being literal.

#include "lint/lint.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

namespace phisched::lint {

namespace {

const std::set<std::string, std::less<>>& metric_kinds() {
  static const std::set<std::string, std::less<>> kKinds = {
      "counter", "gauge", "series", "time_histogram", "histogram"};
  return kKinds;
}

bool valid_kind(const std::string& k) {
  return metric_kinds().count(k) > 0 || k == "event" || k == "bench";
}

struct Entry {
  std::string kind;     // counter/gauge/series/time_histogram/histogram/event
  std::string pattern;  // with '*' wildcards
  std::string file;
  std::size_t line = 0;
};

// ---------------------------------------------------------------------------
// Glob-intersection: do two '*' patterns share any concrete string?
// ---------------------------------------------------------------------------

bool intersects_impl(const std::string& a, std::size_t i, const std::string& b,
                     std::size_t j, std::map<std::size_t, char>& memo) {
  const std::size_t key = i * (b.size() + 1) + j;
  const auto hit = memo.find(key);
  if (hit != memo.end()) return hit->second != 0;
  bool result;
  if (i == a.size() && j == b.size()) {
    result = true;
  } else if (i < a.size() && a[i] == '*') {
    result = intersects_impl(a, i + 1, b, j, memo) ||
             (j < b.size() && intersects_impl(a, i, b, j + 1, memo));
  } else if (j < b.size() && b[j] == '*') {
    result = intersects_impl(a, i, b, j + 1, memo) ||
             (i < a.size() && intersects_impl(a, i + 1, b, j, memo));
  } else if (i < a.size() && j < b.size() && a[i] == b[j]) {
    result = intersects_impl(a, i + 1, b, j + 1, memo);
  } else {
    result = false;
  }
  memo[key] = result ? 1 : 2;
  return result;
}

bool patterns_intersect(const std::string& a, const std::string& b) {
  std::map<std::size_t, char> memo;
  return intersects_impl(a, 0, b, 0, memo);
}

// ---------------------------------------------------------------------------
// Extraction from registration call sites
// ---------------------------------------------------------------------------

/// Splits `args` (the text between a call's parentheses) into top-level
/// comma-separated arguments.
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> parts;
  int depth = 0;
  bool in_str = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= args.size(); ++i) {
    if (i == args.size()) {
      parts.push_back(args.substr(start));
      break;
    }
    const char c = args[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '(' || c == '[' || c == '{') ++depth;
    else if (c == ')' || c == ']' || c == '}') --depth;
    else if (c == ',' && depth == 0) {
      parts.push_back(args.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

/// Builds the name pattern for one argument expression: top-level `+`
/// concatenation of string literals and arbitrary subexpressions, where
/// every non-literal operand contributes a `*`. Returns empty when the
/// expression has no literal fragment at all (a pure-`*` pattern says
/// nothing checkable).
std::string pattern_of(const std::string& expr) {
  std::string pattern;
  bool any_literal = false;
  int depth = 0;
  bool in_str = false;
  bool operand_literal_only = true;  // current '+'-operand is pure literal(s)
  std::string literal;
  auto flush_operand = [&]() {
    if (operand_literal_only && !literal.empty()) {
      pattern += literal;
      any_literal = true;
    } else if (!operand_literal_only) {
      if (!literal.empty()) {
        // Mixed operand (e.g. a call containing a literal) — wildcard.
      }
      if (pattern.empty() || pattern.back() != '*') pattern += '*';
    } else if (literal.empty()) {
      // Empty operand (shouldn't happen) — treat as wildcard.
      if (pattern.empty() || pattern.back() != '*') pattern += '*';
    }
    literal.clear();
    operand_literal_only = true;
  };
  bool str_top = false;  // current string literal sits at concat depth 0
  for (std::size_t i = 0; i < expr.size(); ++i) {
    const char c = expr[i];
    if (in_str) {
      if (c == '\\' && i + 1 < expr.size()) {
        if (str_top) literal += expr[i + 1];
        ++i;
      } else if (c == '"') {
        in_str = false;
      } else if (str_top) {
        literal += c;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
      str_top = depth == 0;
      if (!str_top) operand_literal_only = false;  // literal inside a call
      continue;
    }
    if (c == '(' || c == '[' || c == '{') ++depth;
    else if (c == ')' || c == ']' || c == '}') --depth;
    if (c == '+' && depth == 0) {
      flush_operand();
      continue;
    }
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
      operand_literal_only = false;
    }
  }
  flush_operand();
  if (!any_literal) return {};
  return pattern;
}

/// Extracts registration calls from one file. A call site is a member
/// access (`.` or `->`) whose method name is a metric kind (name = first
/// argument) or `event` (name = second argument).
void extract_calls(const FileText& f, std::vector<Entry>& out) {
  const std::string& code = f.code_strings;
  std::size_t i = 0;
  while (i < code.size()) {
    if (!is_ident_start(code[i]) || (i > 0 && is_ident_char(code[i - 1]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    const std::string name = code.substr(i, end - i);
    const bool is_metric = metric_kinds().count(name) > 0;
    const bool is_event = name == "event";
    if (!is_metric && !is_event) {
      i = end;
      continue;
    }
    // Must be a member call: receiver '.' or '->' directly before.
    std::size_t p = i;
    while (p > 0 && (code[p - 1] == ' ' || code[p - 1] == '\t')) --p;
    const bool member =
        (p > 0 && code[p - 1] == '.') ||
        (p > 1 && code[p - 1] == '>' && code[p - 2] == '-');
    if (!member) {
      i = end;
      continue;
    }
    const std::size_t paren = skip_spaces(code, end);
    if (paren >= code.size() || code[paren] != '(') {
      i = end;
      continue;
    }
    const std::size_t close = skip_balanced(code, paren, '(', ')');
    if (close == std::string::npos) {
      i = end;
      continue;
    }
    const std::vector<std::string> args =
        split_args(code.substr(paren + 1, close - paren - 2));
    const std::size_t arg_idx = is_event ? 1 : 0;
    if (args.size() > arg_idx) {
      const std::string pattern = pattern_of(args[arg_idx]);
      if (!pattern.empty()) {
        out.push_back({is_event ? "event" : name, pattern, f.path,
                       f.line_of(i)});
      }
    }
    i = end;
  }

  // Annotation comments for names emitted through indirections:
  // (the marker string is spliced so this file does not annotate itself)
  static const std::string kMarker = std::string("phisched-lint: ") + "emits(";
  std::size_t pos = 0;
  while ((pos = f.raw.find(kMarker, pos)) != std::string::npos) {
    const std::size_t open = pos + kMarker.size() - 1;
    const std::size_t close2 = f.raw.find(')', open);
    const std::size_t line = f.line_of(pos);
    pos = open;
    if (close2 == std::string::npos) continue;
    std::stringstream list(f.raw.substr(open + 1, close2 - open - 1));
    std::string item;
    while (std::getline(list, item, ',')) {
      std::stringstream kv(item);
      std::string kind, pat;
      kv >> kind >> pat;
      if (!kind.empty() && !pat.empty() && valid_kind(kind) && kind != "bench") {
        out.push_back({kind, pat, f.path, line});
      } else if (!kind.empty()) {
        out.push_back({"", "", f.path, line});  // malformed — flagged below
      }
    }
  }
}

// ---------------------------------------------------------------------------
// docs/telemetry.md schema block
// ---------------------------------------------------------------------------

struct DocEntry {
  std::string kind;
  std::string pattern;    // '<...>' placeholders normalized to '*'
  std::string spelling;   // as written in the doc, for messages
  std::size_t line = 0;
};

/// Normalizes a documented name: every `<...>` placeholder becomes `*`.
std::string normalize_doc_pattern(const std::string& s) {
  std::string out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '<') {
      const std::size_t close = s.find('>', i);
      if (close != std::string::npos) {
        if (out.empty() || out.back() != '*') out += '*';
        i = close + 1;
        continue;
      }
    }
    out += s[i++];
  }
  return out;
}

/// Parses the ```telemetry-schema fenced block. Lines are `kind name`;
/// blank lines and `#` comments are skipped. Returns false (with a
/// finding) when the file has no such block.
bool parse_doc_schema(const std::string& path, const std::string& text,
                      std::vector<DocEntry>& entries,
                      std::vector<Finding>& findings) {
  std::size_t line_no = 0;
  bool in_block = false;
  bool found_block = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos) {
      const std::string trimmed = line.substr(first);
      if (trimmed.rfind("```", 0) == 0) {
        if (!in_block && trimmed.rfind("```telemetry-schema", 0) == 0) {
          in_block = true;
          found_block = true;
        } else if (in_block) {
          in_block = false;
        }
      } else if (in_block && trimmed[0] != '#') {
        std::stringstream ss(trimmed);
        std::string kind, name;
        ss >> kind >> name;
        if (kind.empty()) {
          // blank-ish line
        } else if (!valid_kind(kind) || name.empty()) {
          findings.push_back(
              {path, line_no, "schema-orphan",
               "malformed telemetry-schema line '" + trimmed +
                   "': expected '<kind> <name>' with kind one of counter, "
                   "gauge, series, time_histogram, histogram, event, bench"});
        } else {
          entries.push_back(
              {kind, normalize_doc_pattern(name), name, line_no});
        }
      }
    }
    pos = eol + 1;
    if (eol == text.size()) break;
  }
  return found_block;
}

// ---------------------------------------------------------------------------
// bench/golden metric names
// ---------------------------------------------------------------------------

struct GoldenName {
  std::string name;
  std::string file;
  std::size_t line = 0;
};

/// Pulls every key of every `"metrics": {...}` object out of a golden
/// bench JSON file, with line numbers.
void parse_golden(const std::string& path, const std::string& text,
                  std::vector<GoldenName>& out) {
  std::vector<std::size_t> line_starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') line_starts.push_back(i + 1);
  }
  auto line_of = [&](std::size_t off) {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), off);
    return static_cast<std::size_t>(it - line_starts.begin());
  };
  static const std::string kNeedle = "\"metrics\"";
  std::size_t pos = 0;
  while ((pos = text.find(kNeedle, pos)) != std::string::npos) {
    std::size_t p = text.find('{', pos + kNeedle.size());
    pos += kNeedle.size();
    if (p == std::string::npos) break;
    int depth = 0;
    bool expecting_key = true;
    while (p < text.size()) {
      const char c = text[p];
      if (c == '{' || c == '[') {
        ++depth;
        ++p;
        continue;
      }
      if (c == '}' || c == ']') {
        if (--depth == 0) break;
        ++p;
        continue;
      }
      if (c == '"') {
        const std::size_t start = p + 1;
        std::size_t q = start;
        while (q < text.size() && text[q] != '"') {
          if (text[q] == '\\') ++q;
          ++q;
        }
        if (depth == 1 && expecting_key) {
          out.push_back({text.substr(start, q - start), path, line_of(p)});
          expecting_key = false;
        }
        p = q + 1;
        continue;
      }
      if (c == ',' && depth == 1) expecting_key = true;
      ++p;
    }
  }
}

/// Minimal FileText over a non-C++ file, for suppression lookups
/// (is_suppressed only reads raw lines).
FileText doc_filetext(const std::string& path, const std::string& text) {
  FileText f;
  f.path = path;
  f.raw = text;
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') f.line_starts.push_back(i + 1);
  }
  return f;
}

bool read_all(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

bool run_schema_pass(const std::vector<FileText>& files,
                     const SchemaOptions& opts, std::vector<Finding>& out) {
  // --- extract ---
  std::vector<Entry> raw_entries;
  for (const FileText& f : files) extract_calls(f, raw_entries);

  // Malformed emits() annotations become findings at the annotation line.
  std::vector<Entry> entries;
  for (Entry& e : raw_entries) {
    if (e.kind.empty()) {
      out.push_back(
          {e.file, e.line, "schema-undocumented",
           std::string("malformed 'phisched-lint: ") + "emits(...)' annotation: expected "
           "comma-separated '<kind> <name>' pairs with kind one of counter, "
           "gauge, series, time_histogram, histogram, event"});
    } else {
      entries.push_back(std::move(e));
    }
  }

  // Dedup by (kind, pattern), keeping the first site, and sort for a
  // deterministic schema file.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.pattern != b.pattern) return a.pattern < b.pattern;
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  });
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const Entry& a, const Entry& b) {
                              return a.kind == b.kind &&
                                     a.pattern == b.pattern;
                            }),
                entries.end());

  // --- schema-out JSON ---
  if (!opts.schema_out.empty()) {
    std::ofstream js(opts.schema_out);
    if (!js) {
      std::cerr << "phisched_lint: cannot write " << opts.schema_out << "\n";
      return false;
    }
    js << "{\n  \"tool\": \"phisched_lint\",\n  \"schema_version\": 2,\n"
       << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      js << "    {\"kind\": \"" << json_escape(e.kind) << "\", \"pattern\": \""
         << json_escape(e.pattern) << "\", \"file\": \"" << json_escape(e.file)
         << "\", \"line\": " << e.line << "}"
         << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    if (!js) {
      std::cerr << "phisched_lint: error writing " << opts.schema_out << "\n";
      return false;
    }
  }

  if (opts.docs_path.empty()) return true;  // extraction-only mode

  // --- docs cross-check ---
  std::string doc_text;
  if (!read_all(opts.docs_path, doc_text)) {
    std::cerr << "phisched_lint: cannot read " << opts.docs_path << "\n";
    return false;
  }
  const FileText doc_ft = doc_filetext(opts.docs_path, doc_text);
  std::vector<DocEntry> doc;
  std::vector<Finding> doc_findings;
  if (!parse_doc_schema(opts.docs_path, doc_text, doc, doc_findings)) {
    out.push_back({opts.docs_path, 1, "schema-orphan",
                   "no ```telemetry-schema fenced block found — the schema "
                   "cross-check needs the machine-readable name list (see "
                   "docs/telemetry.md)"});
    return true;
  }
  for (Finding& f : doc_findings) {
    f.suppressed = is_suppressed(doc_ft, f.line, f.rule);
    out.push_back(std::move(f));
  }

  // schema-undocumented: extracted entries with no documented match.
  for (const Entry& e : entries) {
    bool matched = false;
    for (const DocEntry& d : doc) {
      if (d.kind == e.kind && patterns_intersect(e.pattern, d.pattern)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back(
          {e.file, e.line, "schema-undocumented",
           e.kind + " '" + e.pattern +
               "' is not documented in the telemetry-schema block of " +
               opts.docs_path +
               " — document it (placeholders like <dev> match the "
               "wildcards) or fix the misspelled name"});
    }
  }

  // schema-orphan: documented metric/event entries nothing extracts.
  for (const DocEntry& d : doc) {
    if (d.kind == "bench") continue;
    bool matched = false;
    for (const Entry& e : entries) {
      if (d.kind == e.kind && patterns_intersect(e.pattern, d.pattern)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      Finding f{opts.docs_path, d.line, "schema-orphan",
                d.kind + " '" + d.spelling +
                    "' is documented but no registration call in the "
                    "scanned tree emits a matching name — remove the stale "
                    "doc entry or restore the metric"};
      f.suppressed = is_suppressed(doc_ft, f.line, f.rule);
      out.push_back(std::move(f));
    }
  }

  // --- golden cross-check ---
  if (opts.golden_paths.empty()) return true;
  std::vector<GoldenName> golden;
  std::vector<FileText> golden_fts;
  for (const std::string& gp : opts.golden_paths) {
    std::string text;
    if (!read_all(gp, text)) {
      std::cerr << "phisched_lint: cannot read " << gp << "\n";
      return false;
    }
    parse_golden(gp, text, golden);
    golden_fts.push_back(doc_filetext(gp, text));
  }
  auto golden_ft = [&](const std::string& path) -> const FileText& {
    for (const FileText& f : golden_fts) {
      if (f.path == path) return f;
    }
    return golden_fts.front();
  };

  // schema-golden: golden names with no documented bench entry.
  for (const GoldenName& g : golden) {
    bool matched = false;
    for (const DocEntry& d : doc) {
      if (d.kind == "bench" && patterns_intersect(g.name, d.pattern)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      Finding f{g.file, g.line, "schema-golden",
                "golden bench metric '" + g.name +
                    "' matches no 'bench' entry in the telemetry-schema "
                    "block of " + opts.docs_path +
                    " — document the bench metric or fix the name"};
      f.suppressed = is_suppressed(golden_ft(g.file), f.line, f.rule);
      out.push_back(std::move(f));
    }
  }

  // schema-orphan for bench doc entries with no golden name.
  for (const DocEntry& d : doc) {
    if (d.kind != "bench") continue;
    bool matched = false;
    for (const GoldenName& g : golden) {
      if (patterns_intersect(g.name, d.pattern)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      Finding f{opts.docs_path, d.line, "schema-orphan",
                "bench '" + d.spelling +
                    "' is documented but appears in no golden bench file — "
                    "remove the stale doc entry or regenerate the goldens"};
      f.suppressed = is_suppressed(doc_ft, f.line, f.rule);
      out.push_back(std::move(f));
    }
  }

  return true;
}

}  // namespace phisched::lint
