// phisched_lint — shared lexing layer: the comment/string stripper,
// offset→line mapping, suppression lookup, and small token helpers.
//
// The stripper is the load-bearing piece: every pass pattern-matches on
// its output, so a mis-lexed literal turns into phantom findings (or
// silently hidden ones) with wrong line numbers. It is hardened against
// the three lexing traps tests/lint/fixtures/stripper pins down:
//
//   * raw string literals `R"delim(...)delim"`, including the encoding
//     prefixes u8R/uR/UR/LR, whose bodies may contain `//`, `"` and `)"`
//     without ending the literal (a malformed delimiter — too long, or
//     containing a character the standard forbids — falls back to plain
//     string lexing rather than swallowing the rest of the file);
//   * CRLF line endings: `\r` never terminates or extends any state by
//     itself, and the offset→line map stays byte-exact;
//   * backslash line continuations: phase-2 splicing happens before
//     comments are recognized, so a `//` comment whose physical line
//     ends in `\` (or `\` CRLF) continues onto the next physical line.

#include "lint/lint.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

namespace phisched::lint {

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool is_ident_start(char c) { return is_ident_char(c) && !(c >= '0' && c <= '9'); }

namespace {

/// True when the characters at `i` are a backslash line continuation:
/// `\` directly followed by `\n` or `\r\n`. Sets `skip` to the number of
/// characters the splice covers (2 or 3).
bool is_continuation(const std::string& s, std::size_t i, std::size_t& skip) {
  if (s[i] != '\\') return false;
  if (i + 1 < s.size() && s[i + 1] == '\n') {
    skip = 2;
    return true;
  }
  if (i + 2 < s.size() && s[i + 1] == '\r' && s[i + 2] == '\n') {
    skip = 3;
    return true;
  }
  return false;
}

/// A raw-string delimiter may be at most 16 characters and must not
/// contain space, parentheses, or backslash. Returns false when the text
/// after R" is not a well-formed raw-string opener (fall back to plain
/// string lexing so a typo cannot swallow the rest of the file).
bool parse_raw_delim(const std::string& s, std::size_t quote,
                     std::string& delim) {
  delim.clear();
  for (std::size_t j = quote + 1; j < s.size(); ++j) {
    const char c = s[j];
    if (c == '(') return true;
    if (c == ' ' || c == ')' || c == '\\' || c == '\n' || c == '\r' ||
        delim.size() >= 16) {
      return false;
    }
    delim += c;
  }
  return false;
}

/// True when the `"` at `i` opens a raw string literal, i.e. is directly
/// preceded by R (optionally with a u8/u/U/L encoding prefix) that is not
/// the tail of a longer identifier.
bool is_raw_string_open(const std::string& s, std::size_t i) {
  if (i == 0 || s[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // at 'R'
  if (p >= 2 && s[p - 2] == 'u' && s[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 && (s[p - 1] == 'u' || s[p - 1] == 'U' || s[p - 1] == 'L')) {
    p -= 1;
  }
  return p == 0 || !is_ident_char(s[p - 1]);
}

}  // namespace

std::string sanitize(const std::string& text, bool keep_strings) {
  std::string out = text;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  auto blank = [&](std::size_t i) {
    if (out[i] != '\n' && out[i] != '\r') out[i] = ' ';
  };
  auto blank_literal = [&](std::size_t i) {
    if (!keep_strings) blank(i);
  };
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    std::size_t splice = 0;
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          if (is_raw_string_open(out, i) && parse_raw_delim(out, i, raw_delim)) {
            st = St::kRaw;
          } else {
            st = St::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not char literals.
          if (!(i > 0 && is_ident_char(out[i - 1]))) st = St::kChar;
        }
        break;
      case St::kLineComment:
        // Phase-2 splice: a physical line ending in `\` (or `\` CRLF)
        // continues the comment onto the next physical line.
        if (is_continuation(out, i, splice)) {
          out[i] = ' ';
          i += splice - 1;  // leave the newline bytes intact, stay in state
        } else if (c == '\n') {
          st = St::kCode;
        } else {
          blank(i);
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else {
          blank(i);
        }
        break;
      case St::kString:
        if (is_continuation(out, i, splice)) {
          blank_literal(i);
          i += splice - 1;
        } else if (c == '\\' && next != '\0') {
          blank_literal(i);
          blank_literal(i + 1);
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c == '\n') {
          st = St::kCode;  // unterminated literal: do not swallow the file
        } else {
          blank_literal(i);
        }
        break;
      case St::kChar:
        if (c == '\\' && next != '\0') {
          blank_literal(i);
          blank_literal(i + 1);
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c == '\n') {
          st = St::kCode;
        } else {
          blank_literal(i);
        }
        break;
      case St::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (out.compare(i, close.size(), close) == 0) {
          for (std::size_t j = 0; j < close.size(); ++j) blank_literal(i + j);
          i += close.size() - 1;
          st = St::kCode;
        } else {
          blank_literal(i);
        }
        break;
      }
    }
  }
  return out;
}

std::size_t FileText::line_of(std::size_t offset) const {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<std::size_t>(it - line_starts.begin());
}

std::string_view FileText::raw_line(std::size_t line) const {
  if (line == 0 || line > line_starts.size()) return {};
  const std::size_t begin = line_starts[line - 1];
  std::size_t end = line < line_starts.size() ? line_starts[line] : raw.size();
  while (end > begin && (raw[end - 1] == '\n' || raw[end - 1] == '\r')) --end;
  return std::string_view(raw).substr(begin, end - begin);
}

namespace {

/// Directories whose contents count as "decision paths": code here feeds
/// scheduling and event-ordering decisions, so iteration-order hazards
/// are correctness bugs, not style. core/ joined the list with the
/// interference-aware add-on: its device views and bandwidth trims pick
/// placements, so they carry the same bit-identical promise. Files named
/// sharded*, strategy*, or batch* qualify wherever they live — the
/// parallel engine's merge (sim/sharded*), the matchmaking strategies
/// (condor/strategy*), and the batch packer (knapsack/batch*) all promise
/// bit-identical decisions from a given snapshot, so moving such a file
/// out of its directory must not drop it from the lint's scope.
bool path_is_decision(const fs::path& p) {
  const std::string stem = p.filename().string();
  if (stem.rfind("sharded", 0) == 0 || stem.rfind("strategy", 0) == 0 ||
      stem.rfind("batch", 0) == 0) {
    return true;
  }
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "sim" || s == "phi" || s == "cosmic" || s == "condor" ||
        s == "cluster" || s == "core") {
      return true;
    }
  }
  return false;
}

bool path_has_component(const fs::path& p, std::string_view name) {
  for (const auto& part : p) {
    if (part.string() == name) return true;
  }
  return false;
}

}  // namespace

bool load_file(const fs::path& path, const std::string& rel,
               const std::string& root, FileText& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "phisched_lint: cannot open '" << path.string() << "'\n";
    return false;
  }
  out.path = path.generic_string();
  out.rel = rel;
  out.root = root;
  out.raw.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  out.code = sanitize(out.raw, /*keep_strings=*/false);
  out.code_strings = sanitize(out.raw, /*keep_strings=*/true);
  out.line_starts.clear();
  out.line_starts.push_back(0);
  for (std::size_t i = 0; i < out.raw.size(); ++i) {
    if (out.raw[i] == '\n') out.line_starts.push_back(i + 1);
  }
  out.decision_path = path_is_decision(path);
  out.rng_file = path.generic_string().find("common/rng") != std::string::npos;
  // bench/ and tools/ legitimately read the wall clock: they time the
  // simulator from outside it. Their *randomness* still has to come from
  // seeded streams, so only wall-clock is relaxed there.
  out.timing_exempt =
      path_has_component(path, "bench") || path_has_component(path, "tools");
  return true;
}

std::size_t skip_spaces(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == '\r')) {
    ++pos;
  }
  return pos;
}

std::size_t skip_angles(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (--depth == 0) return i + 1;
    } else if (c == ';') {
      return std::string::npos;  // not a template argument list after all
    }
  }
  return std::string::npos;
}

std::size_t skip_balanced(const std::string& s, std::size_t pos, char open,
                          char close) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == open) ++depth;
    else if (s[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::string ident_before(const std::string& s, std::size_t pos) {
  while (pos > 0 && (s[pos - 1] == ' ' || s[pos - 1] == '\t')) --pos;
  std::size_t end = pos;
  while (pos > 0 && is_ident_char(s[pos - 1])) --pos;
  return s.substr(pos, end - pos);
}

bool contains_word(const std::string& s, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool is_suppressed(const FileText& f, std::size_t line, const std::string& rule) {
  for (std::size_t l : {line, line > 1 ? line - 1 : line}) {
    const std::string_view text = f.raw_line(l);
    const std::size_t mark = text.find("phisched-lint:");
    if (mark == std::string_view::npos) continue;
    const std::size_t open = text.find("allow(", mark);
    if (open == std::string_view::npos) continue;
    const std::size_t close = text.find(')', open);
    if (close == std::string_view::npos) continue;
    std::string list(text.substr(open + 6, close - open - 6));
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const std::size_t b = item.find_first_not_of(" \t");
      if (b == std::string::npos) continue;
      const std::size_t e = item.find_last_not_of(" \t");
      const std::string name = item.substr(b, e - b + 1);
      if (name == rule || name == "all") return true;
    }
  }
  return false;
}

}  // namespace phisched::lint
