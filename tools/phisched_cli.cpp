// phisched_cli — run sharing-aware scheduling experiments from the
// command line.
//
// Examples:
//   phisched_cli --compare --jobs 1000 --nodes 8
//   phisched_cli --stack MCCK --workload normal --jobs 400 --series
//   phisched_cli --stack MCC --arrival-rate 2.0 --csv out.csv
//   phisched_cli --help
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/harness.hpp"
#include "cluster/report.hpp"
#include "cluster/service.hpp"
#include "common/args.hpp"
#include "common/json.hpp"
#include "common/sparkline.hpp"
#include "obs/recorder.hpp"
#include "phi/capability.hpp"
#include "workload/arrivals.hpp"
#include "workload/io.hpp"
#include "workload/jobset.hpp"
#include "workload/synthetic.hpp"
#include "workload/templates.hpp"

namespace {

using namespace phisched;

constexpr const char* kUsage = R"(phisched_cli — Xeon Phi sharing-aware scheduler simulator

options:
  --stack NAME          MC | MCC | MCCK | firstfit | bestfit | oracle
                        (default MCCK; ignored with --compare)
  --compare             run MC, MCC and MCCK side by side
  --workload NAME       real | uniform | normal | lowskew | highskew
                        (default real)
  --jobs N              job count (default 1000)
  --nodes N             cluster size (default 8)
  --devices SPEC        Xeon Phi cards per node: a count N (default 1,
                        homogeneous default card) or a fleet spec like
                        2x5110P+1x7120P (generations 3120A | 5110P |
                        7120P; see docs/heterogeneity.md)
  --mem-bw-contention   enable the per-card memory-bandwidth contention
                        model: resident jobs' declared shares past the
                        saturation budget slow the card, and MCCK
                        placement becomes interference-aware (off by
                        default so calibrated outputs reproduce
                        bit-identically)
  --mem-bw-saturation X fraction of a card's aggregate memory bandwidth
                        usable before contention kicks in (default 0.5;
                        only meaningful with --mem-bw-contention)
  --seed N              experiment + workload seed (default 42)
  --arrival-rate R      Poisson arrivals at R jobs/s instead of a batch
  --negotiation-interval S   Condor cycle seconds (default 5)
  --negotiation SPEC    matchmaking strategy per cycle (default fifo):
                        fifo — the per-job FIFO walk
                        batch[:size=K,occ=X,occ-mem=X,packer=NAME] —
                        drain up to K pending jobs (default 16), pack
                        them jointly with the NAME knapsack backend
                        (greedy | dp1d | dp2d | bnb, default dp2d),
                        admitting only placements that keep declared
                        thread occupancy under X (default 0.9) and
                        memory occupancy under occ-mem (default 1.0)
  --overcommit X        MCCK thread overcommit factor (default 1.5)
  --series              print a utilization sparkline (samples every 10 s)
  --csv PATH            append results as CSV to PATH
  --metrics-out PATH    record full telemetry; write the flattened metrics
                        of every run as JSON to PATH
  --events-out PATH     record full telemetry; write the structured event
                        logs (sim-time ordered) as JSON to PATH
  --metrics-filter P[,P...]  keep only metrics whose dotted name — and
                        events whose type or identity field value —
                        starts with one of the comma-separated prefixes
                        (applies to --metrics-out and --events-out)
  --pcie-contention     enable the per-device PCIe link contention model
                        (phi::PcieLink; off by default so calibrated
                        outputs reproduce bit-identically)
  --pcie-bandwidth R    PCIe link bandwidth in MiB/s (default 6144; only
                        meaningful with --pcie-contention)
  --pcie-switch         route each node's card links through a shared
                        host-side PCIe switch (phi::PcieSwitch,
                        hierarchical contention; implies
                        --pcie-contention)
  --pcie-switch-bandwidth R  switch uplink bandwidth in MiB/s (default
                        12288 = 2 cards' worth; only meaningful with
                        --pcie-switch)
  --parallel-shards N   run each experiment on the sharded parallel event
                        engine with N shards (nodes are partitioned
                        node_id mod N); results are bit-identical to the
                        sequential engine for every N (default 0 = off)
  --save-jobs PATH      write the generated job set to PATH and exit
  --load-jobs PATH      run on a job set loaded from PATH (see workload/io.hpp)
  --help                this text

service mode (open-loop streaming arrivals, see docs/service.md):
  --serve               run as a long-lived service instead of a batch:
                        jobs stream in from --arrivals, admission control
                        sheds load, SLA percentiles export per window
  --arrivals SPEC       arrival process (default poisson:rate=1.0):
                        poisson:rate=R
                        bursty:rate_on=R,rate_off=R,mean_on=S,mean_off=S
                        diurnal:base=R,peak=R,period=S
                        trace:file=PATH[,scale=X]
  --horizon S           generate arrivals for S simulated seconds
                        (default 600)
  --sla-interval S      SLA export window length (default 60)
  --sla-out PATH        write the windowed SLA report as JSON to PATH
                        (bench-report shaped; tools/bench_diff reads it)
  --admit-queue N       reject/defer arrivals when the pending queue
                        holds N jobs (default 0 = unbounded)
  --admit-occupancy X   reject/defer arrivals pushing declared-thread
                        occupancy past fraction X (default 0 = unbounded)
  --admit-defer S       defer gated arrivals S seconds instead of
                        rejecting outright (default 0 = reject)
  --admit-max-defers N  defers per job before it is dropped (default 3)
  --admit-packer NAME   consult a knapsack packer (greedy | dp1d | dp2d |
                        bnb) before an occupancy rejection: admit anyway
                        when some device can actually place the job
                        (default off; scalar occupancy cannot see
                        per-device fragmentation)
  --tenants N           attribute jobs round-robin-free to N tenants and
                        export per-tenant fairness gauges (default 1)
  --tenant-skew X       tenant k draws with weight (k+1)^-X (default 0)
  --no-drain            stop at the horizon instead of draining admitted
                        jobs to completion
  In service mode --jobs caps generated arrivals (default 0 = unbounded)
  and --workload picks the per-arrival job mix.
)";

cluster::StackConfig parse_stack(const std::string& name) {
  if (name == "MC" || name == "mc") return cluster::StackConfig::kMC;
  if (name == "MCC" || name == "mcc") return cluster::StackConfig::kMCC;
  if (name == "MCCK" || name == "mcck") return cluster::StackConfig::kMCCK;
  if (name == "firstfit") return cluster::StackConfig::kMCCFirstFit;
  if (name == "bestfit") return cluster::StackConfig::kMCCBestFit;
  if (name == "oracle") return cluster::StackConfig::kMCCOracle;
  throw std::invalid_argument("unknown --stack '" + name + "'");
}

/// "a,b,c" → {"a","b","c"}; empty tokens (and an empty input) drop out.
std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

workload::JobSet make_jobs(const std::string& name, std::size_t count,
                           std::uint64_t seed) {
  const Rng rng = Rng(seed).child("jobs");
  if (name == "real") return workload::make_real_jobset(count, rng);
  if (name == "uniform") {
    return workload::make_synthetic_jobset(workload::Distribution::kUniform,
                                           count, rng);
  }
  if (name == "normal") {
    return workload::make_synthetic_jobset(workload::Distribution::kNormal,
                                           count, rng);
  }
  if (name == "lowskew") {
    return workload::make_synthetic_jobset(workload::Distribution::kLowSkew,
                                           count, rng);
  }
  if (name == "highskew") {
    return workload::make_synthetic_jobset(workload::Distribution::kHighSkew,
                                           count, rng);
  }
  throw std::invalid_argument("unknown --workload '" + name + "'");
}

/// The cluster knobs shared by batch and service mode.
cluster::ExperimentConfig cluster_config_from_args(const ArgParser& args,
                                                   std::uint64_t seed) {
  cluster::ExperimentConfig config;
  config.node_count = static_cast<std::size_t>(args.get_int_or("nodes", 8));
  // --devices: a bare count keeps the homogeneous default card; anything
  // else is a fleet spec ("2x5110P+2x7120P", phi::parse_device_spec).
  const std::string devices = args.get_or("devices", "1");
  if (devices.find_first_not_of("0123456789") == std::string::npos &&
      !devices.empty()) {
    config.node_hw.phi_devices =
        static_cast<int>(args.get_int_or("devices", 1));
  } else {
    config.devices = phi::parse_device_spec(devices);
    config.node_hw.phi_devices = static_cast<int>(config.devices.size());
  }
  config.mem_bw.contention = args.get_bool_or("mem-bw-contention", false);
  config.mem_bw.saturation =
      args.get_real_or("mem-bw-saturation", config.mem_bw.saturation);
  config.seed = seed;
  config.negotiation_interval = args.get_real_or("negotiation-interval", 5.0);
  config.negotiation =
      condor::parse_negotiation(args.get_or("negotiation", "fifo"));
  config.addon.thread_overcommit = args.get_real_or("overcommit", 1.5);
  if (args.get_bool_or("series", false)) config.sample_interval = 10.0;

  config.pcie.contention = args.get_bool_or("pcie-contention", false);
  config.pcie.bandwidth_mib_s =
      args.get_real_or("pcie-bandwidth", config.pcie.bandwidth_mib_s);
  config.pcie_switch.enabled = args.get_bool_or("pcie-switch", false);
  if (config.pcie_switch.enabled) config.pcie.contention = true;
  config.pcie_switch.bandwidth_mib_s = args.get_real_or(
      "pcie-switch-bandwidth", config.pcie_switch.bandwidth_mib_s);
  config.parallel_shards =
      static_cast<std::size_t>(args.get_int_or("parallel-shards", 0));
  return config;
}

/// Per-arrival job sampler for --serve: the Table I mix for "real"
/// (the Service's default), a Fig. 7 synthetic distribution otherwise.
std::function<workload::JobSpec(JobId, Rng&)> make_job_factory(
    const std::string& name) {
  if (name == "real") return {};
  workload::SyntheticConfig config;
  if (name == "uniform") {
    config.distribution = workload::Distribution::kUniform;
  } else if (name == "normal") {
    config.distribution = workload::Distribution::kNormal;
  } else if (name == "lowskew") {
    config.distribution = workload::Distribution::kLowSkew;
  } else if (name == "highskew") {
    config.distribution = workload::Distribution::kHighSkew;
  } else {
    throw std::invalid_argument("unknown --workload '" + name + "'");
  }
  return [config](JobId id, Rng& rng) {
    return workload::sample_synthetic_job(config, id, rng);
  };
}

int run_serve(const ArgParser& args, std::uint64_t seed,
              const std::string& workload_name) {
  cluster::ServiceConfig config;
  config.cluster = cluster_config_from_args(args, seed);
  config.cluster.stack = parse_stack(args.get_or("stack", "MCCK"));
  config.arrivals =
      workload::ArrivalSpec::parse(args.get_or("arrivals", "poisson:rate=1.0"));
  config.horizon_s = args.get_real_or("horizon", 600.0);
  config.window_s = args.get_real_or("sla-interval", 60.0);
  config.drain = !args.get_bool_or("no-drain", false);
  config.max_jobs = static_cast<std::size_t>(args.get_int_or("jobs", 0));
  config.tenants = static_cast<std::size_t>(args.get_int_or("tenants", 1));
  config.tenant_skew = args.get_real_or("tenant-skew", 0.0);
  config.admission.max_queue_depth =
      static_cast<std::size_t>(args.get_int_or("admit-queue", 0));
  config.admission.max_occupancy = args.get_real_or("admit-occupancy", 0.0);
  config.admission.defer_delay_s = args.get_real_or("admit-defer", 0.0);
  config.admission.max_defers =
      static_cast<int>(args.get_int_or("admit-max-defers", 3));
  if (const auto packer = args.get("admit-packer"); packer.has_value()) {
    config.admission.consult_packer = true;
    config.admission.packer = knapsack::solver_kind_from_name(*packer);
  }
  config.job_factory = make_job_factory(workload_name);

  cluster::Service service(config);
  const cluster::ServiceResult result = service.run();

  std::printf("service: %s, %s jobs on %zu nodes, horizon %.0f s "
              "(seed %llu)\n\n",
              config.arrivals.to_string().c_str(), workload_name.c_str(),
              config.cluster.node_count, config.horizon_s,
              static_cast<unsigned long long>(seed));
  std::printf("%8s %8s %8s %8s %8s %10s %12s\n", "window", "offered",
              "admitted", "rejected", "queue", "p99 wait", "p99 turn");
  for (const auto& window : result.windows) {
    const auto& m = window.metrics;
    const auto get = [&m](const char* key) {
      const auto it = m.find(key);
      return it == m.end() ? 0.0 : it->second;
    };
    std::printf("%8zu %8.0f %8.0f %8.0f %8.0f %9.2fs %11.2fs\n", window.index,
                get("offered"), get("admitted"), get("rejected_total"),
                get("queue_depth"), get("p99_wait_s"),
                get("p99_turnaround_s"));
  }
  std::printf("\ngenerated %zu, admitted %llu, rejected %llu "
              "(queue %llu, occupancy %llu, dropped %llu), deferrals %llu\n",
              result.jobs_generated,
              static_cast<unsigned long long>(result.admission.admitted),
              static_cast<unsigned long long>(
                  result.admission.rejected_total()),
              static_cast<unsigned long long>(result.admission.rejected_queue),
              static_cast<unsigned long long>(
                  result.admission.rejected_occupancy),
              static_cast<unsigned long long>(result.admission.dropped),
              static_cast<unsigned long long>(result.admission.deferred));
  std::printf("completed %zu, failed %zu, %s at t=%.1f s\n",
              result.cluster.jobs_completed, result.cluster.jobs_failed,
              result.drained ? "drained" : "stopped (not drained)",
              result.cluster.makespan);

  if (const auto path = args.get("sla-out"); path.has_value()) {
    std::ofstream out(*path, std::ios::binary | std::ios::trunc);
    if (out) out << cluster::sla_report_json(config, result) << '\n';
    if (!out || !out.good()) {
      std::fprintf(stderr, "failed to write %s\n", path->c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.has("help")) {
      std::printf("%s", kUsage);
      return 0;
    }
    const auto unknown = args.unknown(
        {"stack", "compare", "workload", "jobs", "nodes", "devices", "seed",
         "arrival-rate", "negotiation-interval", "negotiation", "overcommit",
         "series", "csv", "save-jobs", "load-jobs", "metrics-out",
         "events-out", "metrics-filter", "mem-bw-contention",
         "mem-bw-saturation", "pcie-contention", "pcie-bandwidth",
         "pcie-switch", "pcie-switch-bandwidth", "parallel-shards", "serve",
         "arrivals", "horizon", "sla-interval", "sla-out", "admit-queue",
         "admit-occupancy", "admit-defer", "admit-max-defers", "admit-packer",
         "tenants", "tenant-skew", "no-drain", "help"});
    if (!unknown.empty()) {
      std::fprintf(stderr, "unknown option --%s (try --help)\n",
                   unknown.front().c_str());
      return 2;
    }

    const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
    const std::string workload_name = args.get_or("workload", "real");
    if (args.get_bool_or("serve", false)) {
      return run_serve(args, seed, workload_name);
    }
    const auto job_count =
        static_cast<std::size_t>(args.get_int_or("jobs", 1000));

    workload::JobSet jobs;
    if (const auto path = args.get("load-jobs"); path.has_value()) {
      jobs = workload::load_jobset(*path);
      std::printf("loaded %zu jobs from %s\n", jobs.size(), path->c_str());
    } else {
      jobs = make_jobs(workload_name, job_count, seed);
    }
    if (const auto path = args.get("save-jobs"); path.has_value()) {
      if (!workload::save_jobset(jobs, *path)) {
        std::fprintf(stderr, "failed to write %s\n", path->c_str());
        return 1;
      }
      std::printf("wrote %zu jobs to %s\n", jobs.size(), path->c_str());
      return 0;
    }
    const double rate = args.get_real_or("arrival-rate", 0.0);
    if (rate > 0.0) {
      Rng arrivals = Rng(seed).child("arrivals");
      SimTime t = 0.0;
      for (auto& job : jobs) {
        t += arrivals.exponential(rate);
        job.submit_time = t;
      }
    }

    cluster::ExperimentConfig config = cluster_config_from_args(args, seed);

    const auto metrics_path = args.get("metrics-out");
    const auto events_path = args.get("events-out");
    config.telemetry = metrics_path.has_value() || events_path.has_value();
    const std::vector<std::string> metric_filters =
        split_csv(args.get_or("metrics-filter", ""));

    const auto run_stack = [&jobs](const cluster::ExperimentConfig& cfg) {
      cluster::Harness harness(cfg);
      harness.submit(jobs);
      return harness.run_to_completion();
    };

    std::vector<cluster::NamedResult> results;
    if (args.get_bool_or("compare", false)) {
      for (const auto stack :
           {cluster::StackConfig::kMC, cluster::StackConfig::kMCC,
            cluster::StackConfig::kMCCK}) {
        config.stack = stack;
        results.push_back(
            {cluster::stack_config_name(stack), run_stack(config)});
      }
      std::printf("%zu %s jobs on %zu nodes (seed %llu)\n\n", jobs.size(),
                  workload_name.c_str(), config.node_count,
                  static_cast<unsigned long long>(seed));
      std::printf("%s", cluster::comparison_table(results).to_string().c_str());
    } else {
      config.stack = parse_stack(args.get_or("stack", "MCCK"));
      results.push_back(
          {cluster::stack_config_name(config.stack), run_stack(config)});
      std::printf("%s on %zu %s jobs, %zu nodes (seed %llu)\n\n",
                  results[0].name.c_str(), jobs.size(), workload_name.c_str(),
                  config.node_count, static_cast<unsigned long long>(seed));
      std::printf("%s", cluster::format_result(results[0].result).c_str());
    }

    if (args.get_bool_or("series", false)) {
      for (const auto& named : results) {
        std::vector<double> series;
        series.reserve(named.result.utilization_series.size());
        for (const auto& [t, u] : named.result.utilization_series) {
          series.push_back(u);
        }
        std::printf("\n%-5s busy cores |%s| 0..100%%\n", named.name.c_str(),
                    sparkline(series, 0.0, 1.0, 70).c_str());
      }
    }

    if (const auto path = args.get("csv"); path.has_value()) {
      const CsvWriter csv = cluster::results_csv(results);
      if (!csv.write_file(*path)) {
        std::fprintf(stderr, "failed to write %s\n", path->c_str());
        return 1;
      }
      std::printf("\nwrote %s\n", path->c_str());
    }

    // Telemetry exports: one document each, with a "runs" array so
    // --compare keeps the per-stack snapshots side by side.
    auto write_runs = [&results](const std::string& path,
                                 const char* section,
                                 const auto& render) {
      JsonWriter w(/*pretty=*/true);
      w.begin_object();
      w.key("runs");
      w.begin_array();
      for (const auto& named : results) {
        w.begin_object();
        w.member("name", named.name);
        w.key(section);
        w.raw(render(named));
        w.end_object();
      }
      w.end_array();
      w.end_object();
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) return false;
      out << std::move(w).str() << '\n';
      return out.good();
    };
    if (metrics_path.has_value()) {
      const bool ok =
          write_runs(*metrics_path, "metrics", [&](const auto& named) {
            return obs::metrics_json(obs::filter_metrics(
                named.result.telemetry->metrics, metric_filters));
          });
      if (!ok) {
        std::fprintf(stderr, "failed to write %s\n", metrics_path->c_str());
        return 1;
      }
      std::printf("\nwrote %s\n", metrics_path->c_str());
    }
    if (events_path.has_value()) {
      const bool ok = write_runs(*events_path, "events", [&](const auto& named) {
        return obs::events_json(obs::filter_events(
            named.result.telemetry->events, metric_filters));
      });
      if (!ok) {
        std::fprintf(stderr, "failed to write %s\n", events_path->c_str());
        return 1;
      }
      std::printf("\nwrote %s\n", events_path->c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
