// phisched_jobstats — inspect a job-set file (docs/jobset-format.md):
// per-template breakdown, resource histograms, duty cycles, declaration
// truthfulness, and schedulability against one Xeon Phi.
//
//   phisched_jobstats my.jobs
//   phisched_cli --workload normal --jobs 400 --save-jobs - | ...
#include <cstdio>
#include <map>

#include "common/args.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workload/io.hpp"
#include "workload/jobset.hpp"

int main(int argc, char** argv) {
  using namespace phisched;
  try {
    const ArgParser args(argc, argv);
    if (args.has("help") || args.positional().size() != 1) {
      std::printf("usage: %s <jobset-file>\n", args.program().c_str());
      return args.has("help") ? 0 : 2;
    }
    const workload::JobSet jobs = workload::load_jobset(args.positional()[0]);
    if (jobs.empty()) {
      std::printf("empty job set\n");
      return 0;
    }

    const PhiHardware phi;
    struct TemplateStats {
      std::size_t count = 0;
      Summary memory;
      Summary threads;
      Summary duration;
      Summary duty;
    };
    std::map<std::string, TemplateStats> per_template;
    Summary memory;
    Summary threads;
    Summary duration;
    Summary duty;
    Histogram mem_hist(0.0, static_cast<double>(phi.usable_memory_mib()), 10);
    Histogram thread_hist(0.0, static_cast<double>(phi.hw_threads()) + 1.0, 8);
    std::size_t untruthful = 0;
    std::size_t unschedulable = 0;
    std::size_t dynamic = 0;

    for (const workload::JobSpec& job : jobs) {
      const std::string key =
          job.template_name.empty() ? "(none)" : job.template_name;
      TemplateStats& t = per_template[key];
      t.count += 1;
      const auto mem = static_cast<double>(job.mem_req_mib);
      const auto thr = static_cast<double>(job.threads_req);
      t.memory.add(mem);
      t.threads.add(thr);
      t.duration.add(job.profile.total_duration());
      t.duty.add(job.profile.duty_cycle());
      memory.add(mem);
      threads.add(thr);
      duration.add(job.profile.total_duration());
      duty.add(job.profile.duty_cycle());
      mem_hist.add(mem);
      thread_hist.add(thr);
      if (!job.declaration_truthful()) ++untruthful;
      if (job.mem_req_mib > phi.usable_memory_mib() ||
          job.threads_req > phi.hw_threads()) {
        ++unschedulable;
      }
      if (job.submit_time > 0.0) ++dynamic;
    }

    std::printf("%zu jobs (%zu dynamic arrivals)\n\n", jobs.size(), dynamic);

    AsciiTable table({"Template", "Jobs", "Mem (MiB, mean/max)",
                      "Threads (mean/max)", "Duration (s, mean)",
                      "Duty cycle (mean)"});
    for (const auto& [name, t] : per_template) {
      table.add_row({name, std::to_string(t.count),
                     AsciiTable::cell(t.memory.mean(), 0) + " / " +
                         AsciiTable::cell(t.memory.max(), 0),
                     AsciiTable::cell(t.threads.mean(), 0) + " / " +
                         AsciiTable::cell(t.threads.max(), 0),
                     AsciiTable::cell(t.duration.mean(), 1),
                     AsciiTable::cell(t.duty.mean(), 2)});
    }
    table.add_row({"TOTAL", std::to_string(jobs.size()),
                   AsciiTable::cell(memory.mean(), 0) + " / " +
                       AsciiTable::cell(memory.max(), 0),
                   AsciiTable::cell(threads.mean(), 0) + " / " +
                       AsciiTable::cell(threads.max(), 0),
                   AsciiTable::cell(duration.mean(), 1),
                   AsciiTable::cell(duty.mean(), 2)});
    std::printf("%s\n", table.to_string().c_str());

    std::printf("declared memory (MiB):\n%s\n", mem_hist.ascii(40).c_str());
    std::printf("declared threads:\n%s\n", thread_hist.ascii(40).c_str());

    std::printf("serial work content: %.0f s\n",
                workload::total_serial_duration(jobs));
    std::printf("untruthful declarations (would be container-killed): %zu\n",
                untruthful);
    std::printf("unschedulable on one Xeon Phi (%lld MiB / %d threads): %zu\n",
                static_cast<long long>(phi.usable_memory_mib()),
                phi.hw_threads(), unschedulable);
    return unschedulable == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
