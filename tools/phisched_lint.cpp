// phisched_lint — determinism lint for the simulator tree.
//
// Every equivalence suite in this repo (SwitchOffEquivalence, harness
// step-vs-oneshot, telemetry identity, the golden bench gates) relies on the
// discrete-event core being bit-identical across runs, seeds, and snapshot
// interleavings. That property in turn depends on coding rules nothing used
// to enforce: no iteration order leaking out of unordered containers into
// decisions, no wall-clock or global-PRNG calls inside the simulation, no
// pointer-keyed ordered containers (pointer order varies run to run), and
// total comparators with explicit same-timestamp tie-breaks wherever events
// are ordered. This tool is a lightweight scanner (no libclang) that makes
// those rules machine-checked.
//
// Rules (see docs/static-analysis.md for the rationale):
//   unordered-iter     iteration over std::unordered_{map,set,...} in a
//                      decision path (sim/ phi/ cosmic/ condor/ cluster/
//                      core/, or any file named sharded*)
//   wall-clock         wall-clock / global-PRNG calls (rand, time, clock,
//                      random_device, system_clock, ...) outside common/rng
//   pointer-key        std::map / std::set keyed by a raw pointer
//   nontotal-sort      sort/heap comparator using <= or >= (not a strict
//                      weak ordering — undefined behaviour in libstdc++)
//   schedule-tiebreak  std::sort/heap comparator ordering by a timestamp
//                      with no secondary key (equal times get container
//                      order; use std::stable_sort or add a sequence key)
//
// Suppression: `// phisched-lint: allow(<rule>[, <rule>...])` on the same
// line or the line immediately above. `allow(all)` suppresses every rule.
// Suppressed findings are still counted and reported (JSON mode lists them)
// so a stale suppression stays visible.
//
// Exit codes: 0 clean (suppressed-only is clean), 1 unsuppressed findings,
// 2 usage or I/O error.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"unordered-iter",
     "iteration over an unordered container in a decision path"},
    {"wall-clock", "wall-clock or global-PRNG call in simulator code"},
    {"pointer-key", "ordered container keyed by a raw pointer"},
    {"nontotal-sort", "sort/heap comparator that is not a strict weak order"},
    {"schedule-tiebreak",
     "timestamp comparator without a deterministic tie-break"},
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool is_ident_start(char c) { return is_ident_char(c) && !(c >= '0' && c <= '9'); }

/// Blanks comments, string literals, and char literals with spaces while
/// preserving every line break, so offsets keep mapping to line numbers
/// and tokens never match inside quoted or commented text.
std::string sanitize(const std::string& text) {
  std::string out = text;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string? The R must directly precede the quote and not be
          // part of a longer identifier (e.g. `STR"..."` suffix macros).
          if (i > 0 && out[i - 1] == 'R' &&
              (i < 2 || !is_ident_char(out[i - 2]))) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < out.size() && out[j] != '(') raw_delim += out[j++];
            st = St::kRaw;
          } else {
            st = St::kString;
          }
        } else if (c == '\'') {
          // Digit separators (1'000'000) are not char literals.
          if (!(i > 0 && is_ident_char(out[i - 1]))) st = St::kChar;
        }
        break;
      case St::kLineComment:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (out.compare(i, close.size(), close) == 0) {
          for (std::size_t j = 0; j < close.size(); ++j) {
            if (out[i + j] != '\n') out[i + j] = ' ';
          }
          i += close.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

struct FileText {
  std::string path;          // as reported
  std::string raw;           // original bytes
  std::string code;          // sanitized
  std::vector<std::size_t> line_starts;
  bool decision_path = false;
  bool rng_file = false;

  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }
  /// Raw text of a 1-based line (empty when out of range).
  [[nodiscard]] std::string_view raw_line(std::size_t line) const {
    if (line == 0 || line > line_starts.size()) return {};
    const std::size_t begin = line_starts[line - 1];
    std::size_t end = line < line_starts.size() ? line_starts[line] : raw.size();
    while (end > begin && (raw[end - 1] == '\n' || raw[end - 1] == '\r')) --end;
    return std::string_view(raw).substr(begin, end - begin);
  }
};

/// Directories whose contents count as "decision paths": code here feeds
/// scheduling and event-ordering decisions, so iteration-order hazards are
/// correctness bugs, not style. core/ joined the list with the
/// interference-aware add-on: its device views and bandwidth trims pick
/// placements, so they carry the same bit-identical promise. Files named
/// sharded*, strategy*, or batch* qualify wherever they live — the parallel engine's merge
/// (sim/sharded*), the matchmaking strategies (condor/strategy*), and the
/// batch packer (knapsack/batch*) all promise bit-identical decisions from
/// a given snapshot, so moving such a file out of its directory must not
/// drop it from the lint's scope.
bool path_is_decision(const fs::path& p) {
  const std::string stem = p.filename().string();
  if (stem.rfind("sharded", 0) == 0 || stem.rfind("strategy", 0) == 0 ||
      stem.rfind("batch", 0) == 0) {
    return true;
  }
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "sim" || s == "phi" || s == "cosmic" || s == "condor" ||
        s == "cluster" || s == "core") {
      return true;
    }
  }
  return false;
}

bool path_is_rng(const fs::path& p) {
  const std::string s = p.generic_string();
  return s.find("common/rng") != std::string::npos;
}

/// Skips a balanced <...> starting at `pos` (which must point at '<').
/// Returns the offset just past the matching '>', or npos on imbalance.
std::size_t skip_angles(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (--depth == 0) return i + 1;
    } else if (c == ';') {
      return std::string::npos;  // not a template argument list after all
    }
  }
  return std::string::npos;
}

/// Skips a balanced bracket pair ((), [], {}) starting at `pos` (which must
/// point at the opener). Returns the offset just past the closer.
std::size_t skip_balanced(const std::string& s, std::size_t pos, char open,
                          char close) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == open) ++depth;
    else if (s[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == '\r')) {
    ++pos;
  }
  return pos;
}

/// The identifier ending just before `pos` (skipping trailing spaces), or
/// empty. Used to inspect `::` qualifiers and member-access receivers.
std::string ident_before(const std::string& s, std::size_t pos) {
  while (pos > 0 && (s[pos - 1] == ' ' || s[pos - 1] == '\t')) --pos;
  std::size_t end = pos;
  while (pos > 0 && is_ident_char(s[pos - 1])) --pos;
  return s.substr(pos, end - pos);
}

/// All identifiers declared in this file as unordered containers
/// (members, locals, parameters): `std::unordered_map<K, V> name...`.
std::vector<std::string> unordered_decls(const std::string& code) {
  std::vector<std::string> names;
  static const std::string_view kKinds[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (std::string_view kind : kKinds) {
    std::size_t pos = 0;
    while ((pos = code.find(kind, pos)) != std::string::npos) {
      const std::size_t start = pos;
      pos += kind.size();
      if ((start > 0 && is_ident_char(code[start - 1])) ||
          (pos < code.size() && is_ident_char(code[pos]))) {
        continue;  // substring of a longer identifier
      }
      std::size_t p = skip_spaces(code, pos);
      if (p >= code.size() || code[p] != '<') continue;
      p = skip_angles(code, p);
      if (p == std::string::npos) continue;
      p = skip_spaces(code, p);
      if (code.compare(p, 2, "::") == 0) continue;  // ::iterator etc.
      // Reference/pointer declarators and cv come between type and name.
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = skip_spaces(code, p + 1);
      }
      if (code.compare(p, 5, "const") == 0 && !is_ident_char(code[p + 5])) {
        p = skip_spaces(code, p + 5);
      }
      std::size_t q = p;
      while (q < code.size() && is_ident_char(code[q])) ++q;
      if (q > p && is_ident_start(code[p])) names.push_back(code.substr(p, q - p));
      pos = q;
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

bool contains_word(const std::string& s, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------
void scan_unordered_iter(const FileText& f, std::vector<Finding>& out) {
  if (!f.decision_path) return;
  const std::string& code = f.code;
  const std::vector<std::string> vars = unordered_decls(code);

  auto flag = [&](std::size_t offset, const std::string& what) {
    out.push_back({f.path, f.line_of(offset), "unordered-iter",
                   "iteration over unordered container " + what +
                       " in a decision path: iteration order is "
                       "implementation-defined and must not feed simulator "
                       "decisions (use std::map/std::vector, or copy and "
                       "sort by a stable key first)"});
  };

  // Range-for whose range expression mentions an unordered type or any
  // identifier declared as an unordered container in this file.
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    const std::size_t kw = pos;
    pos += 3;
    if ((kw > 0 && is_ident_char(code[kw - 1])) ||
        (pos < code.size() && is_ident_char(code[pos]))) {
      continue;
    }
    std::size_t p = skip_spaces(code, pos);
    if (p >= code.size() || code[p] != '(') continue;
    const std::size_t close = skip_balanced(code, p, '(', ')');
    if (close == std::string::npos) continue;
    const std::string inside = code.substr(p + 1, close - p - 2);
    // Top-level ':' (not '::') splits declaration from range expression.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < inside.size(); ++i) {
      const char c = inside[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      else if (c == ':' && depth == 0) {
        if ((i > 0 && inside[i - 1] == ':') ||
            (i + 1 < inside.size() && inside[i + 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = inside.substr(colon + 1);
    if (range.find("unordered_") != std::string::npos) {
      flag(kw, "expression");
      continue;
    }
    for (const std::string& v : vars) {
      if (contains_word(range, v)) {
        flag(kw, "'" + v + "'");
        break;
      }
    }
  }

  // Iterator loops: <unordered var>.begin() / .cbegin() / .rbegin().
  for (const std::string& v : vars) {
    std::size_t vp = 0;
    while ((vp = code.find(v, vp)) != std::string::npos) {
      const std::size_t end = vp + v.size();
      if ((vp > 0 && is_ident_char(code[vp - 1])) ||
          (end < code.size() && is_ident_char(code[end]))) {
        vp = end;
        continue;
      }
      std::size_t p = skip_spaces(code, end);
      if (p < code.size() && code[p] == '.') {
        p = skip_spaces(code, p + 1);
        for (std::string_view b : {"begin", "cbegin", "rbegin"}) {
          if (code.compare(p, b.size(), b) == 0 &&
              !is_ident_char(code[p + b.size()])) {
            flag(vp, "'" + v + "'");
            break;
          }
        }
      }
      vp = end;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------------
void scan_wall_clock(const FileText& f, std::vector<Finding>& out) {
  if (f.rng_file) return;  // common/rng owns the one random_device use
  const std::string& code = f.code;
  static const std::set<std::string, std::less<>> kCallOnly = {
      "rand",  "srand",  "time",    "clock",
      "drand48", "lrand48", "mrand48", "gettimeofday", "clock_gettime"};
  static const std::set<std::string, std::less<>> kAnywhere = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock", "localtime", "gmtime"};

  std::size_t i = 0;
  while (i < code.size()) {
    if (!is_ident_start(code[i])) {
      ++i;
      continue;
    }
    if (i > 0 && is_ident_char(code[i - 1])) {  // mid-identifier
      while (i < code.size() && is_ident_char(code[i])) ++i;
      continue;
    }
    std::size_t end = i;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    const std::string tok = code.substr(i, end - i);
    const bool call_only = kCallOnly.count(tok) > 0;
    const bool anywhere = kAnywhere.count(tok) > 0;
    if (!call_only && !anywhere) {
      i = end;
      continue;
    }
    // Member access (obj.time(), ptr->clock()) is somebody else's API, and
    // qualified names are only suspect under std:: / chrono:: / global ::.
    bool member = false;
    std::string qualifier;
    {
      std::size_t p = i;
      while (p > 0 && (code[p - 1] == ' ' || code[p - 1] == '\t')) --p;
      if (p > 0 && code[p - 1] == '.') member = true;
      if (p > 1 && code[p - 1] == '>' && code[p - 2] == '-') member = true;
      if (p > 1 && code[p - 1] == ':' && code[p - 2] == ':') {
        qualifier = ident_before(code, p - 2);
        if (!(qualifier.empty() || qualifier == "std" ||
              qualifier == "chrono")) {
          member = true;  // SomeClass::time — a member, not libc
        }
      }
    }
    if (member) {
      i = end;
      continue;
    }
    if (call_only) {
      const std::size_t p = skip_spaces(code, end);
      if (p >= code.size() || code[p] != '(') {
        i = end;
        continue;
      }
    }
    out.push_back({f.path, f.line_of(i), "wall-clock",
                   "call to '" + tok +
                       "': wall-clock time and global PRNGs break run-to-run "
                       "reproducibility — use Simulator::now() for time and "
                       "common/rng (seeded SplitMix/Xoshiro) for randomness"});
    i = end;
  }
}

// ---------------------------------------------------------------------------
// Rule: pointer-key
// ---------------------------------------------------------------------------
void scan_pointer_key(const FileText& f, std::vector<Finding>& out) {
  const std::string& code = f.code;
  static const std::string_view kKinds[] = {"map", "set", "multimap",
                                            "multiset"};
  std::size_t pos = 0;
  while ((pos = code.find("std::", pos)) != std::string::npos) {
    std::size_t p = pos + 5;
    std::string_view matched;
    for (std::string_view kind : kKinds) {
      if (code.compare(p, kind.size(), kind) == 0 &&
          p + kind.size() < code.size() &&
          !is_ident_char(code[p + kind.size()])) {
        matched = kind;
        break;
      }
    }
    if (matched.empty()) {
      pos = p;
      continue;
    }
    std::size_t q = skip_spaces(code, p + matched.size());
    if (q >= code.size() || code[q] != '<') {
      pos = p;
      continue;
    }
    // First template argument, at angle depth 1.
    std::string key_type;
    int depth = 0;
    std::size_t i = q;
    for (; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '<') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == '>') {
        if (--depth == 0) break;
      } else if (c == ',' && depth == 1) {
        break;
      } else if (c == ';') {
        break;
      }
      if (depth >= 1) key_type += c;
    }
    if (key_type.find('*') != std::string::npos) {
      // Trim for the message.
      std::string trimmed;
      for (char c : key_type) {
        if (!trimmed.empty() || (c != ' ' && c != '\n' && c != '\t')) {
          trimmed += c == '\n' ? ' ' : c;
        }
      }
      while (!trimmed.empty() && trimmed.back() == ' ') trimmed.pop_back();
      out.push_back(
          {f.path, f.line_of(pos), "pointer-key",
           "std::" + std::string(matched) + " keyed by raw pointer '" +
               trimmed +
               "': pointer values differ between runs, so iteration order "
               "(and anything derived from it) is not reproducible — key by "
               "a stable id instead"});
    }
    pos = i == std::string::npos ? code.size() : i + 1;
  }
}

// ---------------------------------------------------------------------------
// Rules: nontotal-sort and schedule-tiebreak (both inspect sort/heap
// comparator lambdas)
// ---------------------------------------------------------------------------
struct SortCall {
  std::size_t offset = 0;      // of the std::<name> token
  std::string name;            // sort, stable_sort, push_heap, ...
  std::string lambda_body;     // empty when no inline lambda argument
};

std::vector<SortCall> find_sort_calls(const std::string& code) {
  static const std::string_view kNames[] = {
      "sort",      "stable_sort", "partial_sort", "nth_element",
      "make_heap", "push_heap",   "pop_heap",     "sort_heap"};
  std::vector<SortCall> calls;
  std::size_t pos = 0;
  while ((pos = code.find("std::", pos)) != std::string::npos) {
    const std::size_t p = pos + 5;
    std::string_view matched;
    for (std::string_view name : kNames) {
      if (code.compare(p, name.size(), name) == 0 &&
          p + name.size() < code.size() &&
          !is_ident_char(code[p + name.size()])) {
        // Longest match wins (sort vs sort_heap handled by the char check,
        // stable_sort never matches "sort" because of the std:: anchor).
        if (name.size() > matched.size()) matched = name;
      }
    }
    if (matched.empty()) {
      pos = p;
      continue;
    }
    std::size_t q = skip_spaces(code, p + matched.size());
    if (q >= code.size() || code[q] != '(') {
      pos = p;
      continue;
    }
    const std::size_t close = skip_balanced(code, q, '(', ')');
    if (close == std::string::npos) {
      pos = p;
      continue;
    }
    SortCall call;
    call.offset = pos;
    call.name = std::string(matched);
    // Inline lambda argument: a '[' directly after '(' or ','.
    for (std::size_t i = q + 1; i < close - 1; ++i) {
      if (code[i] != '[') continue;
      std::size_t b = i;
      while (b > q + 1 &&
             (code[b - 1] == ' ' || code[b - 1] == '\t' || code[b - 1] == '\n')) {
        --b;
      }
      if (code[b - 1] != '(' && code[b - 1] != ',') continue;
      const std::size_t cap_end = skip_balanced(code, i, '[', ']');
      if (cap_end == std::string::npos || cap_end >= close) break;
      std::size_t body_start = skip_spaces(code, cap_end);
      if (body_start < close && code[body_start] == '(') {
        body_start = skip_balanced(code, body_start, '(', ')');
        if (body_start == std::string::npos) break;
        body_start = skip_spaces(code, body_start);
      }
      // Skip specifiers / trailing return type up to the body brace.
      while (body_start < close && code[body_start] != '{') ++body_start;
      if (body_start >= close) break;
      const std::size_t body_end = skip_balanced(code, body_start, '{', '}');
      if (body_end == std::string::npos || body_end > close) break;
      call.lambda_body = code.substr(body_start + 1, body_end - body_start - 2);
      break;
    }
    calls.push_back(std::move(call));
    pos = close;
  }
  return calls;
}

void scan_sort_rules(const FileText& f, std::vector<Finding>& out) {
  static const char* kTimeWords[] = {"time",     "timestamp",  "arrival",
                                     "deadline", "start_time", "finish_time",
                                     "when",     "arrival_time"};
  static const char* kTieWords[] = {"seq",   "sequence", "id",  "idx",
                                    "index", "tie",      "second"};
  for (const SortCall& call : find_sort_calls(f.code)) {
    if (call.lambda_body.empty()) continue;
    const std::string& body = call.lambda_body;

    // nontotal-sort: <= / >= comparators violate strict weak ordering.
    for (std::string_view op : {"<=", ">="}) {
      const std::size_t at = body.find(op);
      if (at != std::string::npos &&
          body.compare(at, 3, "<=>") != 0) {
        out.push_back(
            {f.path, f.line_of(call.offset), "nontotal-sort",
             "comparator passed to std::" + call.name + " uses '" +
                 std::string(op) +
                 "': equal elements compare true both ways, which is not a "
                 "strict weak ordering (undefined behaviour in libstdc++ "
                 "sort/heap algorithms) — compare with < or > only"});
        break;
      }
    }

    // schedule-tiebreak: plain sort/heap ordering by a timestamp alone.
    // std::stable_sort is exempt — stability IS the deterministic
    // tie-break there.
    if (call.name == "stable_sort" || !f.decision_path) continue;
    const std::size_t semis =
        static_cast<std::size_t>(std::count(body.begin(), body.end(), ';'));
    if (semis > 1 || body.find("return") == std::string::npos) continue;
    bool time_member = false;
    for (const char* w : kTimeWords) {
      std::size_t wp = 0;
      const std::string word = w;
      while ((wp = body.find(word, wp)) != std::string::npos) {
        const std::size_t end = wp + word.size();
        const bool right_ok = end >= body.size() || !is_ident_char(body[end]);
        std::size_t p = wp;
        while (p > 0 && (body[p - 1] == ' ' || body[p - 1] == '\t')) --p;
        const bool member_access =
            (p > 0 && body[p - 1] == '.') ||
            (p > 1 && body[p - 1] == '>' && body[p - 2] == '-');
        if (right_ok && member_access) {
          time_member = true;
          break;
        }
        wp = end;
      }
      if (time_member) break;
    }
    if (!time_member) continue;
    bool has_tiebreak = false;
    for (const char* w : kTieWords) {
      if (contains_word(body, w)) {
        has_tiebreak = true;
        break;
      }
    }
    if (has_tiebreak) continue;
    out.push_back(
        {f.path, f.line_of(call.offset), "schedule-tiebreak",
         "std::" + call.name +
             " comparator orders by a timestamp with no secondary key: "
             "elements with equal times keep container order, which is not "
             "guaranteed stable — add a sequence/id tie-break (like "
             "sim::Simulator's (time, seq) heap order) or use "
             "std::stable_sort"});
  }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------
/// Rules allowed on `line` by a `// phisched-lint: allow(...)` marker on the
/// same line or the line immediately above.
bool is_suppressed(const FileText& f, std::size_t line, const std::string& rule) {
  for (std::size_t l : {line, line > 1 ? line - 1 : line}) {
    const std::string_view text = f.raw_line(l);
    const std::size_t mark = text.find("phisched-lint:");
    if (mark == std::string_view::npos) continue;
    const std::size_t open = text.find("allow(", mark);
    if (open == std::string_view::npos) continue;
    const std::size_t close = text.find(')', open);
    if (close == std::string_view::npos) continue;
    std::string list(text.substr(open + 6, close - open - 6));
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const std::size_t b = item.find_first_not_of(" \t");
      if (b == std::string::npos) continue;
      const std::size_t e = item.find_last_not_of(" \t");
      const std::string name = item.substr(b, e - b + 1);
      if (name == rule || name == "all") return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------
bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx";
}

int usage(std::ostream& os, int code) {
  os << "usage: phisched_lint [--json] [--list-rules] <file-or-dir>...\n"
        "\n"
        "Determinism lint for the phisched simulator tree. Scans C++\n"
        "sources for coding patterns that break run-to-run\n"
        "reproducibility. Suppress a finding with\n"
        "  // phisched-lint: allow(<rule>)\n"
        "on the same line or the line above. See docs/static-analysis.md.\n"
        "\n"
        "exit status: 0 clean, 1 unsuppressed findings, 2 error\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::cout << r.id << "\t" << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "phisched_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      roots.emplace_back(std::string(arg));
    }
  }
  if (roots.empty()) return usage(std::cerr, 2);

  // Deterministic file order regardless of filesystem enumeration order.
  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "phisched_lint: cannot read '" << root.string() << "'\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "phisched_lint: cannot open '" << path.string() << "'\n";
      return 2;
    }
    FileText f;
    f.path = path.generic_string();
    f.raw.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    f.code = sanitize(f.raw);
    f.line_starts.push_back(0);
    for (std::size_t i = 0; i < f.raw.size(); ++i) {
      if (f.raw[i] == '\n') f.line_starts.push_back(i + 1);
    }
    f.decision_path = path_is_decision(path);
    f.rng_file = path_is_rng(path);

    std::vector<Finding> file_findings;
    scan_unordered_iter(f, file_findings);
    scan_wall_clock(f, file_findings);
    scan_pointer_key(f, file_findings);
    scan_sort_rules(f, file_findings);
    for (Finding& fd : file_findings) {
      fd.suppressed = is_suppressed(f, fd.line, fd.rule);
      findings.push_back(std::move(fd));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  const std::size_t suppressed = static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& fd) { return fd.suppressed; }));
  const std::size_t active = findings.size() - suppressed;

  if (json) {
    phisched::JsonWriter w(/*pretty=*/true);
    w.begin_object();
    w.member("tool", "phisched_lint");
    w.member("schema_version", 1);
    w.member("files_scanned", static_cast<std::uint64_t>(files.size()));
    w.member("findings", static_cast<std::uint64_t>(active));
    w.member("suppressed", static_cast<std::uint64_t>(suppressed));
    w.key("results");
    w.begin_array();
    for (const Finding& fd : findings) {
      w.begin_object();
      w.member("file", fd.file);
      w.member("line", static_cast<std::uint64_t>(fd.line));
      w.member("rule", fd.rule);
      w.member("suppressed", fd.suppressed);
      w.member("message", fd.message);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << std::move(w).str() << "\n";
  } else {
    for (const Finding& fd : findings) {
      if (fd.suppressed) continue;
      std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                << fd.message << "\n";
    }
    std::cout << "phisched_lint: " << active << " finding(s), " << suppressed
              << " suppressed, " << files.size() << " file(s) scanned\n";
  }
  return active == 0 ? 0 : 1;
}
