// phisched_lint — multi-pass whole-program analyzer for the simulator tree.
//
// Every equivalence suite in this repo (SwitchOffEquivalence, harness
// step-vs-oneshot, telemetry identity, the golden bench gates) relies on the
// discrete-event core being bit-identical across runs, seeds, and snapshot
// interleavings, and on the twelve src/ layers keeping their documented
// dependency shape as the tree grows. This tool is a lightweight analyzer
// (no libclang) that makes both machine-checked. Three pass families:
//
//   pattern rules (tools/lint/rules.cpp) — per-file determinism scans:
//     unordered-iter     iteration over std::unordered_{map,set,...} in a
//                        decision path (sim/ phi/ cosmic/ condor/ cluster/
//                        core/, or any file named sharded*/strategy*/batch*)
//     wall-clock         wall-clock reads (time, clock, system_clock, ...)
//                        outside bench/ and tools/ harnesses
//     rng-discipline     randomness outside the seeded-engine plumbing in
//                        common/rng (rand, random_device, mt19937, shuffle)
//     float-order        floating-point reduction in hash-table iteration
//                        order (fp addition is not associative)
//     pointer-key        std::map / std::set keyed by a raw pointer
//     nontotal-sort      sort/heap comparator using <= or >= (not a strict
//                        weak ordering — undefined behaviour in libstdc++)
//     schedule-tiebreak  std::sort/heap comparator ordering by a timestamp
//                        with no secondary key
//
//   include graph (tools/lint/include_graph.cpp) — whole-program:
//     layering           an include edge that violates the architecture
//                        layer DAG (--list-layers prints the table, which
//                        docs/architecture.md mirrors literally)
//     include-cycle      a cycle of project files in the include graph
//     unused-include     a quoted include contributing no name the file uses
//
//   telemetry schema (tools/lint/schema.cpp) — whole-program:
//     schema-undocumented  a metric/event registration whose name pattern
//                          matches nothing in docs/telemetry.md
//     schema-orphan        a documented name no code emits (or a documented
//                          bench name absent from the goldens)
//     schema-golden        a golden bench metric name absent from the docs
//
// Suppression: `// phisched-lint: allow(<rule>[, <rule>...])` on the same
// line or the line immediately above. `allow(all)` suppresses every rule.
// Suppressed findings are still counted and reported (JSON mode lists them)
// so a stale suppression stays visible.
//
// Exit codes: 0 clean (suppressed-only is clean), 1 unsuppressed findings,
// 2 usage or I/O error.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "lint/lint.hpp"

namespace {

using namespace phisched::lint;

constexpr RuleInfo kRules[] = {
    {"unordered-iter",
     "iteration over an unordered container in a decision path"},
    {"wall-clock", "wall-clock call in simulator code"},
    {"rng-discipline", "randomness outside the seeded-engine plumbing"},
    {"float-order",
     "floating-point reduction in hash-table iteration order"},
    {"pointer-key", "ordered container keyed by a raw pointer"},
    {"nontotal-sort", "sort/heap comparator that is not a strict weak order"},
    {"schedule-tiebreak",
     "timestamp comparator without a deterministic tie-break"},
    {"layering", "include edge that violates the architecture layer DAG"},
    {"include-cycle", "cycle of project files in the include graph"},
    {"unused-include", "quoted include contributing no name the file uses"},
    {"schema-undocumented",
     "metric/event name pattern missing from docs/telemetry.md"},
    {"schema-orphan", "documented metric/event/bench name nothing emits"},
    {"schema-golden", "golden bench metric name missing from the docs"},
};

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cxx";
}

int usage(std::ostream& os, int code) {
  os << "usage: phisched_lint [options] <file-or-dir>...\n"
        "\n"
        "Whole-program analyzer for the phisched simulator tree: determinism\n"
        "pattern rules, architecture-layer conformance over the include\n"
        "graph, and telemetry-schema extraction/cross-checks. See\n"
        "docs/static-analysis.md.\n"
        "\n"
        "options:\n"
        "  --json              machine-readable report on stdout\n"
        "  --list-rules        print every rule id with a summary and exit\n"
        "  --list-layers       print the enforced layer DAG table and exit\n"
        "                      (docs/architecture.md mirrors it literally)\n"
        "  --graph-out FILE    write the project include graph as DOT\n"
        "  --schema-out FILE   write the extracted telemetry schema as JSON\n"
        "  --schema-docs FILE  telemetry doc to cross-check (the fenced\n"
        "                      telemetry-schema block); when a scanned root\n"
        "                      is named 'src', ../docs/telemetry.md is used\n"
        "                      automatically if present\n"
        "  --golden PATH       golden bench JSON file or directory of them\n"
        "                      (repeatable; auto-discovered from\n"
        "                      ../bench/golden next to a 'src' root)\n"
        "\n"
        "Suppress a finding with\n"
        "  // phisched-lint: allow(<rule>)\n"
        "on the same line or the line above.\n"
        "\n"
        "exit status: 0 clean, 1 unsuppressed findings, 2 error\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string graph_out;
  SchemaOptions schema;
  bool schema_docs_given = false;
  bool golden_given = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "phisched_lint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::cout << r.id << "\t" << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--list-layers") {
      std::cout << layer_table_text();
      return 0;
    } else if (arg == "--graph-out") {
      const char* v = value("--graph-out");
      if (v == nullptr) return usage(std::cerr, 2);
      graph_out = v;
    } else if (arg == "--schema-out") {
      const char* v = value("--schema-out");
      if (v == nullptr) return usage(std::cerr, 2);
      schema.schema_out = v;
    } else if (arg == "--schema-docs") {
      const char* v = value("--schema-docs");
      if (v == nullptr) return usage(std::cerr, 2);
      schema.docs_path = v;
      schema_docs_given = true;
    } else if (arg == "--golden") {
      const char* v = value("--golden");
      if (v == nullptr) return usage(std::cerr, 2);
      schema.golden_paths.emplace_back(v);
      golden_given = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "phisched_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      roots.emplace_back(std::string(arg));
    }
  }
  if (roots.empty()) return usage(std::cerr, 2);

  // Auto-discovery: pointing the tool at a directory named `src` opts into
  // the full repo gate — the telemetry doc and golden bench files that live
  // beside it are picked up so plain `phisched_lint src` enforces
  // everything. Explicit flags always win.
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (!fs::is_directory(root, ec) || root.filename() != "src") continue;
    const fs::path repo = root.parent_path().empty() ? fs::path(".")
                                                     : root.parent_path();
    if (!schema_docs_given) {
      const fs::path docs = repo / "docs" / "telemetry.md";
      if (fs::is_regular_file(docs, ec)) {
        schema.docs_path = docs.generic_string();
        schema_docs_given = true;
      }
    }
    if (!golden_given) {
      const fs::path golden = repo / "bench" / "golden";
      if (fs::is_directory(golden, ec)) {
        schema.golden_paths.push_back(golden.generic_string());
        golden_given = true;
      }
    }
  }

  // Expand --golden directories into their *.json members.
  {
    std::vector<std::string> expanded;
    for (const std::string& gp : schema.golden_paths) {
      std::error_code ec;
      if (fs::is_directory(gp, ec)) {
        for (const auto& entry : fs::directory_iterator(gp, ec)) {
          if (entry.is_regular_file() &&
              entry.path().extension() == ".json") {
            expanded.push_back(entry.path().generic_string());
          }
        }
      } else if (fs::is_regular_file(gp, ec)) {
        expanded.push_back(gp);
      } else {
        std::cerr << "phisched_lint: cannot read '" << gp << "'\n";
        return 2;
      }
    }
    std::sort(expanded.begin(), expanded.end());
    schema.golden_paths = std::move(expanded);
  }

  // Deterministic file order regardless of filesystem enumeration order.
  // Each file remembers its root so include spellings resolve relative to
  // the scanned roots (with a leading src/ stripped, the include style the
  // tree uses).
  struct Pending {
    fs::path path;
    std::string rel;
    std::string root;
  };
  std::vector<Pending> pending;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      const std::string root_name = root.filename().generic_string();
      for (auto it = fs::recursive_directory_iterator(root, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable(it->path())) {
          std::string rel =
              it->path().lexically_relative(root).generic_string();
          if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
          pending.push_back({it->path(), std::move(rel), root_name});
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      pending.push_back({root, root.filename().generic_string(),
                         root.filename().generic_string()});
    } else {
      std::cerr << "phisched_lint: cannot read '" << root.string() << "'\n";
      return 2;
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) { return a.path < b.path; });
  pending.erase(std::unique(pending.begin(), pending.end(),
                            [](const Pending& a, const Pending& b) {
                              return a.path == b.path;
                            }),
                pending.end());

  std::vector<FileText> files;
  files.reserve(pending.size());
  for (const Pending& p : pending) {
    FileText f;
    if (!load_file(p.path, p.rel, p.root, f)) return 2;
    files.push_back(std::move(f));
  }

  std::vector<Finding> findings;
  for (const FileText& f : files) scan_pattern_rules(f, findings);
  if (!run_include_passes(files, graph_out, findings)) return 2;
  if (!schema.docs_path.empty() || !schema.schema_out.empty()) {
    if (!run_schema_pass(files, schema, findings)) return 2;
  }

  // Apply suppressions. Findings in scanned files use their FileText; the
  // schema pass marks suppressions for doc/golden files itself.
  std::map<std::string, const FileText*> by_path;
  for (const FileText& f : files) by_path[f.path] = &f;
  for (Finding& fd : findings) {
    if (fd.suppressed) continue;
    const auto hit = by_path.find(fd.file);
    if (hit != by_path.end()) {
      fd.suppressed = is_suppressed(*hit->second, fd.line, fd.rule);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  const std::size_t suppressed = static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& fd) { return fd.suppressed; }));
  const std::size_t active = findings.size() - suppressed;

  if (json) {
    phisched::JsonWriter w(/*pretty=*/true);
    w.begin_object();
    w.member("tool", "phisched_lint");
    w.member("schema_version", 2);
    w.member("files_scanned", static_cast<std::uint64_t>(files.size()));
    w.member("findings", static_cast<std::uint64_t>(active));
    w.member("suppressed", static_cast<std::uint64_t>(suppressed));
    w.key("results");
    w.begin_array();
    for (const Finding& fd : findings) {
      w.begin_object();
      w.member("file", fd.file);
      w.member("line", static_cast<std::uint64_t>(fd.line));
      w.member("rule", fd.rule);
      w.member("suppressed", fd.suppressed);
      w.member("message", fd.message);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << std::move(w).str() << "\n";
  } else {
    for (const Finding& fd : findings) {
      if (fd.suppressed) continue;
      std::cout << fd.file << ":" << fd.line << ": [" << fd.rule << "] "
                << fd.message << "\n";
    }
    std::cout << "phisched_lint: " << active << " finding(s), " << suppressed
              << " suppressed, " << files.size() << " file(s) scanned\n";
  }
  return active == 0 ? 0 : 1;
}
