#!/usr/bin/env bash
# Sanitizer sweep: configure, build, and run the `sanitize`-labelled test
# suites under each sanitizer CMake preset. The default preset list covers
# every sanitizer flavour the tree supports; pass preset names to run a
# subset (CI shards asan+tsan and ubsan into separate jobs this way).
#
# Usage:
#   tools/run_sanitizers.sh [preset ...]   # default: asan tsan ubsan
#
# Exits non-zero on the first failing preset. Intended both for direct
# use and as the body of the `sanitizer_sweep` CTest entry registered in
# tests/CMakeLists.txt (run it with `ctest -C sanitize-sweep`).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="$(nproc 2>/dev/null || echo 4)"
default_presets=(asan tsan ubsan)
presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=("${default_presets[@]}")
fi

for preset in "${presets[@]}"; do
  echo "==> [${preset}] configure"
  cmake --preset "${preset}" >/dev/null
  echo "==> [${preset}] build"
  cmake --build --preset "${preset}" -j "${jobs}"
  echo "==> [${preset}] ctest -L sanitize"
  ctest --preset "${preset}" -j "${jobs}" --output-on-failure
done

echo "sanitizer sweep passed: ${presets[*]}"
